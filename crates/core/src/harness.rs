//! SPMD execution: a persistent worker pool, plus the classic [`spmd`]
//! helper (now a thin wrapper over a transient pool).
//!
//! The paper's protocol — and any serving deployment of this code — is many
//! short runs. Spawning one OS thread per processor per run makes thread
//! creation a per-run cost; [`WorkerPool`] makes it an engine-lifetime cost:
//! the threads spawn once, park between jobs, and execute submitted SPMD
//! closures. Worker `i` always runs processor `i`, so per-processor state
//! (context, locality) maps to a stable thread across jobs.
//!
//! Synchronization is a mutex + two condvars: submitting a job bumps a
//! sequence number and wakes every worker; each worker runs the closure for
//! its processor and decrements a remaining-count; the submitter sleeps
//! until the count reaches zero. The mutex hand-offs establish the
//! happens-before edges that make the borrowed-closure lifetime erasure
//! below sound, and that order one job's memory effects before the next
//! job's (the engine's untimed `reset` writes included).

use crate::env::{Env, Phase};
use std::any::Any;
use std::cell::Cell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

thread_local! {
    /// The phase/step the current worker thread is executing, maintained by
    /// [`crate::pipeline::StepPipeline::run_step`]. Read when enriching a
    /// propagated panic so schedule-exploration counterexamples name the
    /// failing phase, not just the processor.
    static WORKER_PHASE: Cell<Option<(Phase, u32)>> = const { Cell::new(None) };
}

/// Record (or clear, with `None`) the phase the calling worker thread is in.
/// Purely diagnostic: consumed by the worker-panic enrichment below.
pub fn set_worker_phase(phase: Option<(Phase, u32)>) {
    WORKER_PHASE.with(|c| c.set(phase));
}

/// Rewrap a string-ish worker panic payload as
/// `"worker <proc> [in <phase> phase of step <n>]: <original message>"`.
/// Non-string payloads pass through untouched (never lose a typed payload).
fn enrich_panic(proc: usize, payload: Box<dyn Any + Send>) -> Box<dyn Any + Send> {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        Some((*s).to_string())
    } else {
        payload.downcast_ref::<String>().cloned()
    };
    match msg {
        Some(m) => {
            let at = match WORKER_PHASE.with(|c| c.get()) {
                Some((phase, step)) => format!(" in {phase} phase of step {step}"),
                None => String::new(),
            };
            Box::new(format!("worker {proc}{at}: {m}"))
        }
        None => payload,
    }
}

/// A type-erased pointer to the borrowed per-job closure. Only ever
/// dereferenced by workers between job submission and job completion, while
/// the submitting `run` call keeps the closure alive on its stack.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared-call-safe) and the pool's
// completion protocol guarantees it outlives every use (see `run`).
unsafe impl Send for Job {}

struct PoolState {
    /// Sequence number of the current job; bumped on submission.
    seq: u64,
    job: Option<Job>,
    /// Workers that have not yet finished the current job.
    remaining: usize,
    /// First worker panic of the current job, if any.
    panic: Option<Box<dyn Any + Send>>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signaled on job submission and shutdown.
    work: Condvar,
    /// Signaled when the last worker finishes a job.
    done: Condvar,
}

impl PoolShared {
    /// Poison-ignoring lock (a worker panic is reported via `panic`, not by
    /// poisoning the pool).
    fn lock(&self) -> MutexGuard<'_, PoolState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn wait<'a>(&self, cv: &Condvar, g: MutexGuard<'a, PoolState>) -> MutexGuard<'a, PoolState> {
        match cv.wait(g) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A pool of parked worker threads executing SPMD jobs, one thread per
/// processor. Threads spawn in [`WorkerPool::new`] and live until the pool
/// drops; [`WorkerPool::run`] dispatches one closure invocation per
/// processor and blocks until all of them return.
pub struct WorkerPool {
    procs: usize,
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool of `procs` parked workers.
    pub fn new(procs: usize) -> WorkerPool {
        assert!(procs > 0, "worker pool needs at least one processor");
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                seq: 0,
                job: None,
                remaining: 0,
                panic: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..procs)
            .map(|proc| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bh-worker-{proc}"))
                    .spawn(move || worker_loop(proc, &shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            procs,
            shared,
            handles,
        }
    }

    /// Number of processors (= worker threads) in the pool.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// Run `f(proc, ctx)` once per processor of `env` on the pool's workers,
    /// returning the per-processor results in processor order. Blocks until
    /// every worker finished; panics in any worker propagate (with the
    /// original payload) after all workers completed the job.
    pub fn run<E, R, F>(&self, env: &E, f: F) -> Vec<R>
    where
        E: Env,
        R: Send,
        F: Fn(usize, &mut E::Ctx) -> R + Sync,
    {
        assert_eq!(
            env.num_procs(),
            self.procs,
            "environment has {} processors but the pool has {} workers",
            env.num_procs(),
            self.procs
        );
        let results: Vec<std::sync::Mutex<Option<R>>> = (0..self.procs)
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        let call = |proc: usize| {
            // Bracket the job with the Env scheduling hooks. `worker_end`
            // must run even when the job unwinds — a controlled scheduler
            // ([`crate::sched::SchedEnv`]) otherwise waits forever for the
            // departed worker — so the body is wrapped in its own
            // catch/resume.
            env.worker_begin(proc);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut ctx = env.make_ctx(proc);
                let r = f(proc, &mut ctx);
                *results[proc].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            }));
            env.worker_end(proc);
            if let Err(payload) = outcome {
                std::panic::resume_unwind(payload);
            }
        };
        let wide: &(dyn Fn(usize) + Sync) = &call;
        // SAFETY: `run` does not return until `remaining == 0`, i.e. until
        // every worker has finished (or unwound from) its invocation of the
        // closure, so erasing the borrow lifetime cannot produce a dangling
        // use: `call` outlives all dereferences of the pointer.
        let job = Job(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), *const (dyn Fn(usize) + Sync)>(
                wide as *const _,
            )
        });

        {
            let mut g = self.shared.lock();
            debug_assert_eq!(g.remaining, 0, "pool ran two jobs at once");
            g.seq += 1;
            g.job = Some(job);
            g.remaining = self.procs;
            g.panic = None;
            self.shared.work.notify_all();
        }
        {
            let mut g = self.shared.lock();
            while g.remaining > 0 {
                g = self.shared.wait(&self.shared.done, g);
            }
            g.job = None;
            if let Some(payload) = g.panic.take() {
                drop(g);
                std::panic::resume_unwind(payload);
            }
        }
        results
            .into_iter()
            .map(|m| {
                m.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("worker produced no result")
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut g = self.shared.lock();
            g.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(proc: usize, shared: &PoolShared) {
    let mut last_seq = 0u64;
    loop {
        let job = {
            let mut g = shared.lock();
            loop {
                if g.shutdown {
                    return;
                }
                if g.seq != last_seq {
                    break;
                }
                g = shared.wait(&shared.work, g);
            }
            last_seq = g.seq;
            g.job.expect("job set when seq advances")
        };
        // A panic mid-phase leaves the thread-local set; clear it so a later
        // job's failure is not attributed to a stale phase.
        set_worker_phase(None);
        // SAFETY: the submitting `run` call keeps the pointee alive until
        // every worker reports completion below; see `WorkerPool::run`.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe { (*job.0)(proc) }));
        let mut g = shared.lock();
        if let Err(payload) = outcome {
            if g.panic.is_none() {
                g.panic = Some(enrich_panic(proc, payload));
            }
        }
        g.remaining -= 1;
        if g.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

/// Run `f(proc, ctx)` on one thread per processor of `env`, returning the
/// per-processor results in processor order. Panics in any worker propagate.
///
/// Compatibility wrapper over [`WorkerPool`]: each call spins up a transient
/// pool (the same per-run thread cost as the historical `thread::scope`
/// implementation). Long-lived callers should hold a
/// [`crate::engine::SimEngine`] — or a [`WorkerPool`] directly — to reuse
/// the workers across runs.
pub fn spmd<E, R, F>(env: &E, f: F) -> Vec<R>
where
    E: Env,
    R: Send,
    F: Fn(usize, &mut E::Ctx) -> R + Sync,
{
    WorkerPool::new(env.num_procs()).run(env, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::NativeEnv;

    #[test]
    fn spmd_runs_every_proc_once() {
        let env = NativeEnv::new(6);
        let out = spmd(&env, |proc, _ctx| proc * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn spmd_allows_barriers() {
        let env = NativeEnv::new(4);
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        spmd(&env, |_proc, ctx| {
            hits.fetch_add(1, Ordering::SeqCst);
            crate::env::Env::barrier(&env, ctx);
            assert_eq!(hits.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn pool_reuses_workers_across_jobs() {
        let env = NativeEnv::new(4);
        let pool = WorkerPool::new(4);
        let first: Vec<std::thread::ThreadId> =
            pool.run(&env, |_proc, _ctx| std::thread::current().id());
        for round in 0..3 {
            let out = pool.run(&env, |proc, _ctx| {
                (std::thread::current().id(), proc + round)
            });
            for (p, (tid, v)) in out.into_iter().enumerate() {
                assert_eq!(tid, first[p], "processor {p} moved threads between jobs");
                assert_eq!(v, p + round);
            }
        }
    }

    #[test]
    fn pool_supports_barriers_across_jobs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let env = NativeEnv::new(4);
        let pool = WorkerPool::new(4);
        for _ in 0..3 {
            let hits = AtomicUsize::new(0);
            pool.run(&env, |_proc, ctx| {
                hits.fetch_add(1, Ordering::SeqCst);
                crate::env::Env::barrier(&env, ctx);
                assert_eq!(hits.load(Ordering::SeqCst), 4);
            });
        }
    }

    #[test]
    fn pool_propagates_worker_panics_with_payload() {
        let env = NativeEnv::new(3);
        let pool = WorkerPool::new(3);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&env, |proc, _ctx| {
                if proc == 1 {
                    panic!("boom from worker 1");
                }
                proc
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string payload>".to_string());
        assert!(msg.contains("boom from worker 1"), "payload lost: {msg}");
        // The failing processor index is part of the propagated message.
        assert!(msg.starts_with("worker 1"), "proc attribution lost: {msg}");
        // The pool must stay usable after a panicked job.
        let out = pool.run(&env, |proc, _ctx| proc);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn pool_panics_carry_proc_and_phase() {
        let env = NativeEnv::new(2);
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&env, |proc, _ctx| {
                if proc == 1 {
                    set_worker_phase(Some((Phase::Force, 3)));
                    panic!("diverged");
                }
            })
        }));
        let msg = caught
            .expect_err("panic must propagate")
            .downcast_ref::<String>()
            .cloned()
            .expect("string payload");
        assert!(
            msg.contains("worker 1") && msg.contains("force phase of step 3"),
            "attribution missing: {msg}"
        );
        // The stale phase must not leak into the next job's attribution.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&env, |proc, _ctx| {
                if proc == 0 {
                    panic!("early");
                }
            })
        }));
        let msg = caught
            .expect_err("panic must propagate")
            .downcast_ref::<String>()
            .cloned()
            .expect("string payload");
        assert!(
            msg.starts_with("worker 0:") && !msg.contains("phase"),
            "stale phase leaked: {msg}"
        );
    }

    #[test]
    #[should_panic(expected = "3 processors but the pool has 2 workers")]
    fn pool_rejects_mismatched_env() {
        let env = NativeEnv::new(3);
        let pool = WorkerPool::new(2);
        pool.run(&env, |proc, _ctx| proc);
    }
}
