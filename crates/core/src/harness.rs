//! SPMD execution helper: run one closure per processor on real threads.

use crate::env::Env;

/// Run `f(proc, ctx)` on one thread per processor of `env`, returning the
/// per-processor results in processor order. Panics in any worker propagate.
pub fn spmd<E, R, F>(env: &E, f: F) -> Vec<R>
where
    E: Env,
    R: Send,
    F: Fn(usize, &mut E::Ctx) -> R + Sync,
{
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..env.num_procs())
            .map(|proc| {
                let f = &f;
                s.spawn(move || {
                    let mut ctx = env.make_ctx(proc);
                    f(proc, &mut ctx)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::NativeEnv;

    #[test]
    fn spmd_runs_every_proc_once() {
        let env = NativeEnv::new(6);
        let out = spmd(&env, |proc, _ctx| proc * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn spmd_allows_barriers() {
        let env = NativeEnv::new(4);
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        spmd(&env, |_proc, ctx| {
            hits.fetch_add(1, Ordering::SeqCst);
            crate::env::Env::barrier(&env, ctx);
            assert_eq!(hits.load(Ordering::SeqCst), 4);
        });
    }
}
