//! Root crate of the reproduction workspace: re-exports the component
//! crates for the examples and cross-crate integration tests.
//!
//! * [`bh_core`] — the Barnes-Hut application and the five parallel
//!   tree-building algorithms (the paper's contribution).
//! * [`ssmp`] — the shared-address-space multiprocessor simulator (the
//!   platform substrate).
//! * [`bh_serve`] — the multi-tenant job server turning the engine into a
//!   long-lived service (admission queue, fair scheduling, engine cache).
//! * [`bh_experiments`] — the harness regenerating every table and figure.

#![deny(unsafe_op_in_unsafe_fn)]

pub use bh_core;
pub use bh_experiments;
pub use bh_serve;
pub use ssmp;
