//! Engine-reuse determinism certification.
//!
//! A [`SimEngine`] keeps its worker pool and its `World`/tree allocations
//! alive across jobs, `reset()`-ing them instead of reallocating. These
//! tests certify the load-bearing property of that reuse: a job run on a
//! *reused* engine produces the same physics as the same job run fresh —
//! i.e. `reset()` restores exactly the state a fresh allocation starts
//! with, for every algorithm.
//!
//! On one processor runs are fully deterministic, so the comparison is
//! **bitwise** — any state leaking across jobs (a stale cost, a leftover
//! subdivision count) would shift the result exactly. On several
//! processors even two *fresh* runs differ: racy leaf-insertion order
//! perturbs floating-point summation (ulp level), and for UPDATE the
//! schedule-dependent incremental tree structure can flip discrete
//! opening-criterion decisions (observed up to ~1e-5 position drift over
//! three steps). The multi-processor comparison therefore bounds the
//! divergence at a physics tolerance well above that inherent jitter and
//! well below any genuine state-reuse artifact (stale accelerations or
//! costs corrupt positions at O(1), or fail validation outright).

use bh_repro::bh_core::prelude::*;
use bh_repro::bh_serve::job::{digest_bodies, JobSpec};
use bh_repro::bh_serve::server::{JobResult, Server, ServerConfig};

const ALL_ALGS: [Algorithm; 6] = [
    Algorithm::Orig,
    Algorithm::Local,
    Algorithm::Update,
    Algorithm::Partree,
    Algorithm::Space,
    Algorithm::Morton,
];

/// Absolute tolerance for multi-processor comparisons: two orders of
/// magnitude above the worst inherent fresh-vs-fresh jitter measured on
/// this workload (~1e-5, from UPDATE's schedule-dependent tree), orders of
/// magnitude below any stale-state artifact.
const JITTER_TOL: f64 = 1e-3;

fn job_cfg(alg: Algorithm) -> SimConfig {
    let mut cfg = SimConfig::new(alg);
    cfg.k = 4;
    cfg.warmup_steps = 1;
    cfg.measured_steps = 2;
    cfg
}

fn assert_close(context: &str, a: &[Body], b: &[Body]) {
    assert_eq!(a.len(), b.len(), "{context}: body counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.mass, y.mass, "{context}: body {i} mass differs");
        let dp = (x.pos - y.pos).norm();
        let dv = (x.vel - y.vel).norm();
        assert!(
            dp <= JITTER_TOL && dv <= JITTER_TOL,
            "{context}: body {i} diverged (dpos {dp:e}, dvel {dv:e})"
        );
    }
}

#[test]
fn reused_engine_is_bitwise_identical_to_fresh_runs_single_proc() {
    // One processor: fully deterministic, so the comparison is exact.
    let bodies = Model::Plummer.generate(96, 1998);
    for alg in ALL_ALGS {
        let cfg = job_cfg(alg);
        let (fresh_stats, fresh_state) =
            run_simulation_with_state(&NativeEnv::new(1), &cfg, &bodies);
        fresh_stats.assert_valid();

        let mut engine = SimEngine::new(NativeEnv::new(1));
        let (s1, b1) = engine.run_with_state(&cfg, &bodies);
        s1.assert_valid();
        // Second job on the same engine: same pool, reset state.
        let (s2, b2) = engine.run_with_state(&cfg, &bodies);
        s2.assert_valid();

        assert!(
            b1 == fresh_state,
            "{alg}: first engine job diverged from a fresh run"
        );
        assert!(
            b2 == fresh_state,
            "{alg}: reused-state engine job diverged from a fresh run"
        );
    }
}

#[test]
fn reused_engine_matches_fresh_runs_on_four_procs() {
    let bodies = Model::Plummer.generate(96, 1998);
    for alg in ALL_ALGS {
        let cfg = job_cfg(alg);
        let (fresh_stats, fresh_state) =
            run_simulation_with_state(&NativeEnv::new(4), &cfg, &bodies);
        fresh_stats.assert_valid();

        let mut engine = SimEngine::new(NativeEnv::new(4));
        let (s1, b1) = engine.run_with_state(&cfg, &bodies);
        s1.assert_valid();
        let (s2, b2) = engine.run_with_state(&cfg, &bodies);
        s2.assert_valid();

        assert_close(&format!("{alg} first job"), &b1, &fresh_state);
        assert_close(&format!("{alg} reused job"), &b2, &fresh_state);
    }
}

#[test]
fn engine_reuse_across_different_algorithms_stays_exact() {
    // Alternate algorithms on one engine (same allocation shape for the
    // per-processor-layout ones, a reallocation when ORIG's global layout
    // comes in between) and compare every result against a fresh run.
    // Single processor keeps the comparison bitwise.
    let bodies = Model::Plummer.generate(96, 1998);
    let mut engine = SimEngine::new(NativeEnv::new(1));
    for alg in [
        Algorithm::Space,
        Algorithm::Orig,
        Algorithm::Morton,
        Algorithm::Partree,
        Algorithm::Space,
    ] {
        let cfg = job_cfg(alg);
        let (stats, state) = engine.run_with_state(&cfg, &bodies);
        stats.assert_valid();
        let (_, fresh) = run_simulation_with_state(&NativeEnv::new(1), &cfg, &bodies);
        assert!(state == fresh, "{alg}: interleaved engine job diverged");
    }
}

#[test]
fn cross_tenant_interleaving_through_the_server_cache_stays_bitwise() {
    // Two tenants alternate same-shape jobs through the job server's
    // engine cache: every served job must be bitwise identical to the same
    // spec run on a fresh engine in a clean single-tenant process. This is
    // the multi-tenant extension of the reuse certification above — cached
    // engines must not leak any state between tenants.
    let scenarios = [
        Model::Plummer,
        Model::UniformSphere,
        Model::TwoClusterCollision,
    ];
    let mut specs = Vec::new();
    for round in 0..3 {
        for tenant in ["acme", "globex"] {
            let mut spec = JobSpec::defaults(96);
            spec.scenario = scenarios[round % scenarios.len()];
            spec.warmup = 1;
            spec.steps = 2;
            spec.k = 4;
            specs.push((tenant, spec));
        }
    }

    // Ground truth: each distinct spec on a fresh engine, single tenant.
    let fresh: Vec<u64> = specs
        .iter()
        .map(|(_, spec)| {
            let (_, state) =
                run_simulation_with_state(&NativeEnv::new(1), &spec.config(), &spec.bodies());
            digest_bodies(&state)
        })
        .collect();

    // One worker serializes execution so the cache is exercised every job
    // after the first (same shape throughout).
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: specs.len(),
        engine_capacity: 2,
        ..ServerConfig::default()
    });
    let (tx, rx) = std::sync::mpsc::channel();
    for (i, (tenant, spec)) in specs.iter().enumerate() {
        let tx = tx.clone();
        server
            .submit(
                tenant,
                spec.clone(),
                Box::new(move |result| {
                    tx.send((i, result)).unwrap();
                }),
            )
            .expect("submit");
    }
    server.wait_idle();
    let mut served = vec![None; specs.len()];
    while let Ok((i, result)) = rx.try_recv() {
        served[i] = Some(result);
    }
    let stats = server.shutdown();
    assert!(
        stats.cache.hits > 0,
        "same-shape jobs never hit the engine cache"
    );

    for (i, (tenant, spec)) in specs.iter().enumerate() {
        match &served[i] {
            Some(JobResult::Done(outcome)) => assert_eq!(
                outcome.digest, fresh[i],
                "job {i} (tenant {tenant}, {:?}): served digest diverged from fresh run",
                spec.scenario
            ),
            other => panic!("job {i} (tenant {tenant}) did not complete: {other:?}"),
        }
    }
}

#[test]
fn engine_handles_shape_changes_between_jobs() {
    // n changes force a reallocation; the result must still match fresh.
    let mut engine = SimEngine::new(NativeEnv::new(1));
    let cfg = job_cfg(Algorithm::Partree);
    for n in [96, 64, 96] {
        let bodies = Model::Plummer.generate(n, 1998);
        let (stats, state) = engine.run_with_state(&cfg, &bodies);
        stats.assert_valid();
        let (_, fresh) = run_simulation_with_state(&NativeEnv::new(1), &cfg, &bodies);
        assert!(state == fresh, "n={n}: engine job diverged after realloc");
    }
}
