//! Accounting invariants of [`ProcRecord`]: the per-phase [`CtxStats`]
//! deltas introduced for TraceEnv/Table-2 reporting must tile the run —
//! every counter a processor accumulates lands in exactly one phase bucket,
//! and warmup steps stay out of the measured totals.

use bh_repro::bh_core::prelude::*;

fn run(alg: Algorithm, warmup: usize, measured: usize) -> RunStats {
    let env = NativeEnv::new(4);
    let bodies = Model::Plummer.generate(128, 1998);
    let mut cfg = SimConfig::new(alg);
    cfg.k = 4;
    cfg.warmup_steps = warmup;
    cfg.measured_steps = measured;
    let stats = run_simulation(&env, &cfg, &bodies);
    stats.assert_valid();
    stats
}

#[test]
fn phase_deltas_tile_the_final_counters() {
    // With zero warmup steps every environment operation happens inside
    // one of the four phase sections, so the per-phase deltas must sum
    // exactly to the context's final counters on every processor.
    let stats = run(Algorithm::Orig, 0, 2);
    for rec in &stats.procs_records {
        assert_eq!(rec.steps.len(), 2);
        let sum = |f: fn(&CtxStats) -> u64| rec.phases.iter().map(f).sum::<u64>();
        assert_eq!(sum(|s| s.lock_acquires), rec.final_stats.lock_acquires);
        assert_eq!(sum(|s| s.lock_wait), rec.final_stats.lock_wait);
        assert_eq!(sum(|s| s.barrier_wait), rec.final_stats.barrier_wait);
        assert_eq!(sum(|s| s.remote_misses), rec.final_stats.remote_misses);
        assert_eq!(sum(|s| s.local_misses), rec.final_stats.local_misses);
        assert_eq!(sum(|s| s.page_faults), rec.final_stats.page_faults);
        // The phase times are the same barrier-boundary intervals as the
        // per-step samples, just accumulated per phase.
        for phase in Phase::ALL {
            let sampled: u64 = rec
                .steps
                .iter()
                .map(|s| match phase {
                    Phase::Tree => s.tree,
                    Phase::Partition => s.partition,
                    Phase::Force => s.force,
                    Phase::Update => s.update,
                })
                .sum();
            assert_eq!(rec.phases[phase.index()].time, sampled);
        }
    }
    // ORIG locks during the tree build; none of it may leak into the
    // embarrassingly parallel update phase.
    let tree_locks: u64 = stats
        .procs_records
        .iter()
        .map(|r| r.phases[Phase::Tree.index()].lock_acquires)
        .sum();
    let update_locks: u64 = stats
        .procs_records
        .iter()
        .map(|r| r.phases[Phase::Update.index()].lock_acquires)
        .sum();
    assert!(tree_locks > 0, "ORIG must lock while building");
    assert_eq!(update_locks, 0, "update phase takes no locks");
}

#[test]
fn warmup_steps_are_excluded_from_measured_totals() {
    let with_warmup = run(Algorithm::Orig, 1, 1);
    for rec in &with_warmup.procs_records {
        assert_eq!(rec.steps.len(), 1, "only measured steps are sampled");
        let measured: u64 = rec.phases.iter().map(|s| s.lock_acquires).sum();
        // final_stats covers warmup + measured; the phase buckets must not.
        assert!(
            measured < rec.final_stats.lock_acquires,
            "P{}: measured {} should exclude the warmup step's locks ({})",
            rec.proc,
            measured,
            rec.final_stats.lock_acquires
        );
    }
    // Lock *counts* on a fixed workload are determined by the insertion
    // structure, not by timing: one measured step sees the same total
    // whether or not a warmup step preceded it is NOT guaranteed (bodies
    // move), but the measured totals must at least be nonzero and agree
    // with the legacy tree-phase counters.
    for rec in &with_warmup.procs_records {
        assert_eq!(
            rec.phases[Phase::Tree.index()].lock_acquires,
            rec.tree_locks
        );
        assert_eq!(
            rec.phases[Phase::Tree.index()].lock_wait,
            rec.tree_lock_wait
        );
        let barrier: u64 = rec.phases.iter().map(|s| s.barrier_wait).sum();
        assert_eq!(barrier, rec.barrier_wait);
    }
}

#[test]
fn force_list_metrics_tile_and_are_processor_count_independent() {
    // The batched force kernel reports (groups, list entries, interactions)
    // through StageExtra into the per-processor records. Interactions are
    // counted per *applied* body, so their total is an exact function of
    // the body set — independent of processor count and group size — while
    // group/entry totals may grow with processors (a window split across a
    // zone boundary is traversed by both owners).
    let bodies = Model::Plummer.generate(256, 1998);
    let mut totals = Vec::new();
    for procs in [1usize, 4] {
        for gs in [1usize, 5, 16] {
            let env = NativeEnv::new(procs);
            let mut cfg = SimConfig::new(Algorithm::Morton);
            cfg.k = 4;
            cfg.warmup_steps = 0;
            cfg.measured_steps = 2;
            cfg.group_size = gs;
            let stats = run_simulation(&env, &cfg, &bodies);
            stats.assert_valid();
            assert!(stats.force_groups() > 0, "{procs}p gs={gs}: no groups");
            assert!(
                stats.force_list_entries() >= stats.force_groups(),
                "{procs}p gs={gs}: a traversal emits at least one entry"
            );
            // Derived metrics are exact ratios of the raw counters.
            let len = stats.force_list_entries() as f64 / stats.force_groups() as f64;
            assert!((stats.force_list_len() - len).abs() < 1e-12);
            let reuse = stats.force_interactions() as f64 / stats.force_list_entries() as f64;
            assert!((stats.force_list_reuse() - reuse).abs() < 1e-12);
            totals.push(stats.force_interactions());
        }
    }
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "interaction totals must not depend on processors or group size: {totals:?}"
    );
}

#[test]
fn legacy_kernels_report_no_list_metrics() {
    let bodies = Model::Plummer.generate(128, 1998);
    let env = NativeEnv::new(2);
    for (flat, gs) in [(true, 0), (false, 16)] {
        let mut cfg = SimConfig::new(Algorithm::Orig);
        cfg.k = 4;
        cfg.warmup_steps = 0;
        cfg.measured_steps = 1;
        cfg.flat_force = flat;
        cfg.group_size = gs;
        let stats = run_simulation(&env, &cfg, &bodies);
        stats.assert_valid();
        assert_eq!(stats.force_groups(), 0, "flat={flat} gs={gs}");
        assert_eq!(stats.force_list_entries(), 0, "flat={flat} gs={gs}");
        assert_eq!(stats.force_interactions(), 0, "flat={flat} gs={gs}");
        assert_eq!(stats.force_list_len(), 0.0);
        assert_eq!(stats.force_list_reuse(), 0.0);
    }
}

#[test]
fn phase_stats_aggregates_counters_and_critical_path() {
    let stats = run(Algorithm::Local, 0, 1);
    let tree = stats.phase_stats(Phase::Tree);
    let per_proc_locks: u64 = stats
        .procs_records
        .iter()
        .map(|r| r.phases[Phase::Tree.index()].lock_acquires)
        .sum();
    assert_eq!(tree.lock_acquires, per_proc_locks);
    let max_time = stats
        .procs_records
        .iter()
        .map(|r| r.phases[Phase::Tree.index()].time)
        .max()
        .unwrap();
    assert_eq!(tree.time, max_time);
    assert_eq!(stats.tree_time(), max_time);
}
