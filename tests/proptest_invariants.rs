//! Property-based tests of the core data-structure invariants: for
//! arbitrary body sets, every parallel tree-building algorithm must produce
//! exactly the reference octree, costzones must produce a permutation with
//! contiguous balanced zones, and the geometric primitives must obey their
//! algebra.

use bh_repro::bh_core::algorithms::{common, Algorithm, Builder};
use bh_repro::bh_core::body::Body;
use bh_repro::bh_core::harness::spmd;
use bh_repro::bh_core::math::{morton, Cube, Vec3};
use bh_repro::bh_core::partition::costzones;
use bh_repro::bh_core::prelude::*;
use bh_repro::bh_core::tree::validate;
use proptest::prelude::*;

/// Arbitrary body in a bounded box with positive mass.
fn arb_body() -> impl Strategy<Value = Body> {
    (
        (-100.0..100.0f64, -100.0..100.0f64, -100.0..100.0f64),
        (-1.0..1.0f64, -1.0..1.0f64, -1.0..1.0f64),
        0.001..10.0f64,
    )
        .prop_map(|((x, y, z), (vx, vy, vz), m)| {
            Body::new(Vec3::new(x, y, z), Vec3::new(vx, vy, vz), m)
        })
}

fn arb_bodies(max: usize) -> impl Strategy<Value = Vec<Body>> {
    prop::collection::vec(arb_body(), 1..max)
}

/// Build one tree with `alg` on `procs` native threads and return it with
/// the world.
fn build_tree(bodies: &[Body], alg: Algorithm, procs: usize, k: usize) -> (NativeEnv, SharedTree, World) {
    let env = NativeEnv::new(procs);
    let world = World::new(&env, bodies);
    let tree = SharedTree::new(&env, bodies.len(), k, alg.layout());
    let builder = Builder::new(&env, alg, bodies.len(), k);
    spmd(&env, |proc, ctx| {
        let cube = common::bounds_phase(&env, ctx, &world, proc);
        builder.build(&env, ctx, &tree, &world, proc, 0, cube);
        env.barrier(ctx);
        builder.com(&env, ctx, &tree, &world, proc, 0);
        env.barrier(ctx);
    });
    drop(builder);
    (env, tree, world)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_trees_match_sequential_reference(bodies in arb_bodies(300), k in 1usize..=8, procs in 1usize..=6) {
        let reference = SeqTree::build(&bodies, k);
        for alg in [Algorithm::Orig, Algorithm::Local, Algorithm::Partree, Algorithm::Space] {
            let (_env, tree, world) = build_tree(&bodies, alg, procs, k);
            validate::validate(&tree, &world.positions(), &world.masses(), true)
                .map_err(|e| TestCaseError::fail(format!("{alg}: {e}")))?;
            validate::matches_reference(&tree, &reference)
                .map_err(|e| TestCaseError::fail(format!("{alg}: {e}")))?;
        }
    }

    #[test]
    fn costzones_is_a_balanced_contiguous_permutation(
        bodies in arb_bodies(400),
        procs in 1usize..=8,
        costs in prop::collection::vec(1u32..1000, 400),
    ) {
        let (env, tree, world) = build_tree(&bodies, Algorithm::Local, procs, 8);
        for i in 0..bodies.len() {
            world.cost.poke(i, costs[i % costs.len()]);
        }
        // Rebuild so the tree's subtree cost sums reflect the new costs
        // (costzones reads them to skip subtrees).
        let builder = Builder::new(&env, Algorithm::Local, bodies.len(), 8);
        spmd(&env, |proc, ctx| {
            let cube = common::bounds_phase(&env, ctx, &world, proc);
            builder.build(&env, ctx, &tree, &world, proc, 1, cube);
            env.barrier(ctx);
            builder.com(&env, ctx, &tree, &world, proc, 1);
            env.barrier(ctx);
            costzones(&env, ctx, &tree, &world, proc);
            env.barrier(ctx);
        });
        // Permutation.
        let mut seen = vec![false; bodies.len()];
        for i in 0..bodies.len() {
            let b = world.order.peek(i) as usize;
            prop_assert!(!seen[b], "duplicate body {b}");
            seen[b] = true;
        }
        // Contiguous monotone zones covering [0, n).
        prop_assert_eq!(world.zone_start.peek(0), 0);
        prop_assert_eq!(world.zone_start.peek(procs) as usize, bodies.len());
        let total: u64 = (0..bodies.len()).map(|i| world.cost.peek(i) as u64).sum();
        for q in 0..procs {
            let (s, e) = world.zone(q);
            prop_assert!(s <= e);
            // Cost balance: a zone never exceeds its fair share by more than
            // the largest single body cost plus rounding.
            let zc: u64 = (s..e).map(|i| world.cost.peek(world.order.peek(i) as usize) as u64).sum();
            let fair = total / procs as u64;
            prop_assert!(zc <= fair + 1001, "zone {q} cost {zc} vs fair {fair}");
        }
    }

    #[test]
    fn morton_keys_follow_octree_descent(
        x in -0.999..0.999f64, y in -0.999..0.999f64, z in -0.999..0.999f64, depth in 1u32..12
    ) {
        let root = Cube::new(Vec3::ZERO, 1.0);
        let p = Vec3::new(x, y, z);
        let key = morton::key_in_cube(p, &root);
        let mut cube = root;
        for oct in morton::octant_path(key, depth) {
            prop_assert_eq!(oct, cube.octant_of(p));
            cube = cube.octant(oct);
            prop_assert!(cube.contains(p));
        }
    }

    #[test]
    fn octants_partition(cx in -10.0..10.0f64, h in 0.001..100.0f64, px in -1.0..1.0f64, py in -1.0..1.0f64, pz in -1.0..1.0f64) {
        let cube = Cube::new(Vec3::new(cx, -cx, cx * 0.5), h);
        let p = cube.center + Vec3::new(px, py, pz) * (h * 0.999);
        prop_assert!(cube.contains(p));
        let containing: usize = (0..8).filter(|&o| cube.octant(o).contains(p)).count();
        prop_assert_eq!(containing, 1, "point must lie in exactly one octant");
        prop_assert!(cube.octant(cube.octant_of(p)).contains(p));
    }

    #[test]
    fn center_of_mass_is_inside_bounding_cube(bodies in arb_bodies(200)) {
        let tree = SeqTree::build(&bodies, 4);
        let com = match &tree.nodes[tree.root as usize] {
            bh_repro::bh_core::tree::SeqNode::Cell { com, .. } => *com,
            bh_repro::bh_core::tree::SeqNode::Leaf { com, .. } => *com,
        };
        prop_assert!(tree.cube.contains(com) || bodies.len() == 1);
    }

    #[test]
    fn update_algorithm_stays_valid_under_motion(
        bodies in arb_bodies(200),
        jitters in prop::collection::vec((-0.5..0.5f64, -0.5..0.5f64, -0.5..0.5f64), 3),
        procs in 1usize..=4,
    ) {
        let env = NativeEnv::new(procs);
        let world = World::new(&env, &bodies);
        let tree = SharedTree::new(&env, bodies.len(), 8, Algorithm::Update.layout());
        let builder = Builder::new(&env, Algorithm::Update, bodies.len(), 8);
        for (step, j) in jitters.iter().enumerate() {
            spmd(&env, |proc, ctx| {
                let cube = common::bounds_phase(&env, ctx, &world, proc);
                builder.build(&env, ctx, &tree, &world, proc, step as u32, cube);
                env.barrier(ctx);
                builder.com(&env, ctx, &tree, &world, proc, step as u32);
                env.barrier(ctx);
            });
            let summary = validate::validate_with(
                &tree,
                &world.positions(),
                &world.masses(),
                bh_repro::bh_core::tree::validate::ValidateOpts {
                    check_summaries: true,
                    allow_empty_cells: step > 0,
                },
            )
            .map_err(|e| TestCaseError::fail(format!("step {step}: {e}")))?;
            prop_assert_eq!(summary.bodies, bodies.len());
            // Drift every body a little (scaled per body for variety).
            for i in 0..bodies.len() {
                let f = (i % 7) as f64 / 3.0;
                world.pos.poke(i, world.pos.peek(i) + Vec3::new(j.0, j.1, j.2) * f);
            }
        }
    }
}
