//! Randomized tests of the core data-structure invariants: for arbitrary
//! body sets, every parallel tree-building algorithm must produce exactly
//! the reference octree, costzones must produce a permutation with
//! contiguous balanced zones, and the geometric primitives must obey their
//! algebra.
//!
//! Cases are drawn from the workspace's own deterministic [`SmallRng`]
//! (the build is offline, so no property-testing crate): every failure is
//! reproducible from the printed case seed.

use bh_repro::bh_core::algorithms::{common, Algorithm, Builder};
use bh_repro::bh_core::body::Body;
use bh_repro::bh_core::harness::spmd;
use bh_repro::bh_core::math::{morton, Cube, Vec3};
use bh_repro::bh_core::partition::costzones;
use bh_repro::bh_core::prelude::*;
use bh_repro::bh_core::rng::SmallRng;
use bh_repro::bh_core::tree::validate;

/// Random body in a bounded box with positive mass.
fn arb_body(rng: &mut SmallRng) -> Body {
    Body::new(
        Vec3::new(
            rng.gen_range(-100.0, 100.0),
            rng.gen_range(-100.0, 100.0),
            rng.gen_range(-100.0, 100.0),
        ),
        Vec3::new(
            rng.gen_range(-1.0, 1.0),
            rng.gen_range(-1.0, 1.0),
            rng.gen_range(-1.0, 1.0),
        ),
        rng.gen_range(0.001, 10.0),
    )
}

fn arb_bodies(rng: &mut SmallRng, max: usize) -> Vec<Body> {
    let n = rng.gen_range_usize(1, max);
    (0..n).map(|_| arb_body(rng)).collect()
}

/// Build one tree with `alg` on `procs` native threads and return it with
/// the world.
fn build_tree(
    bodies: &[Body],
    alg: Algorithm,
    procs: usize,
    k: usize,
) -> (NativeEnv, SharedTree, World) {
    let env = NativeEnv::new(procs);
    let world = World::new(&env, bodies);
    let tree = SharedTree::new(&env, bodies.len(), k, alg.layout());
    let builder = Builder::new(&env, alg, bodies.len(), k);
    spmd(&env, |proc, ctx| {
        let cube = common::bounds_phase(&env, ctx, &world, proc);
        builder.build(&env, ctx, &tree, &world, proc, 0, cube);
        env.barrier(ctx);
        builder.com(&env, ctx, &tree, &world, proc, 0);
        env.barrier(ctx);
    });
    drop(builder);
    (env, tree, world)
}

#[test]
fn parallel_trees_match_sequential_reference() {
    for case in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(0x7261_6365 + case);
        let bodies = arb_bodies(&mut rng, 300);
        let k = rng.gen_range_usize(1, 9);
        let procs = rng.gen_range_usize(1, 7);
        let reference = SeqTree::build(&bodies, k);
        for alg in [
            Algorithm::Orig,
            Algorithm::Local,
            Algorithm::Partree,
            Algorithm::Space,
        ] {
            let (_env, tree, world) = build_tree(&bodies, alg, procs, k);
            validate::validate(&tree, &world.positions(), &world.masses(), true)
                .unwrap_or_else(|e| panic!("case {case} {alg}: {e}"));
            validate::matches_reference(&tree, &reference)
                .unwrap_or_else(|e| panic!("case {case} {alg}: {e}"));
        }
    }
}

#[test]
fn costzones_is_a_balanced_contiguous_permutation() {
    for case in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(0x7a6f_6e65 + case);
        let bodies = arb_bodies(&mut rng, 400);
        let procs = rng.gen_range_usize(1, 9);
        let costs: Vec<u32> = (0..400)
            .map(|_| rng.gen_range_usize(1, 1000) as u32)
            .collect();
        let (env, tree, world) = build_tree(&bodies, Algorithm::Local, procs, 8);
        for i in 0..bodies.len() {
            world.cost.poke(i, costs[i % costs.len()]);
        }
        // Rebuild so the tree's subtree cost sums reflect the new costs
        // (costzones reads them to skip subtrees).
        let builder = Builder::new(&env, Algorithm::Local, bodies.len(), 8);
        spmd(&env, |proc, ctx| {
            let cube = common::bounds_phase(&env, ctx, &world, proc);
            builder.build(&env, ctx, &tree, &world, proc, 1, cube);
            env.barrier(ctx);
            builder.com(&env, ctx, &tree, &world, proc, 1);
            env.barrier(ctx);
            costzones(&env, ctx, &tree, &world, proc);
            env.barrier(ctx);
        });
        // Permutation.
        let mut seen = vec![false; bodies.len()];
        for i in 0..bodies.len() {
            let b = world.order.peek(i) as usize;
            assert!(!seen[b], "case {case}: duplicate body {b}");
            seen[b] = true;
        }
        // Contiguous monotone zones covering [0, n).
        assert_eq!(world.zone_start.peek(0), 0);
        assert_eq!(world.zone_start.peek(procs) as usize, bodies.len());
        let total: u64 = (0..bodies.len()).map(|i| world.cost.peek(i) as u64).sum();
        for q in 0..procs {
            let (s, e) = world.zone(q);
            assert!(s <= e);
            // Cost balance: a zone never exceeds its fair share by more than
            // the largest single body cost plus rounding.
            let zc: u64 = (s..e)
                .map(|i| world.cost.peek(world.order.peek(i) as usize) as u64)
                .sum();
            let fair = total / procs as u64;
            assert!(
                zc <= fair + 1001,
                "case {case}: zone {q} cost {zc} vs fair {fair}"
            );
        }
    }
}

#[test]
fn morton_keys_follow_octree_descent() {
    let mut rng = SmallRng::seed_from_u64(0x6d6f_7274);
    for case in 0..200 {
        let root = Cube::new(Vec3::ZERO, 1.0);
        let p = Vec3::new(
            rng.gen_range(-0.999, 0.999),
            rng.gen_range(-0.999, 0.999),
            rng.gen_range(-0.999, 0.999),
        );
        let depth = rng.gen_range_usize(1, 12) as u32;
        let key = morton::key_in_cube(p, &root);
        let mut cube = root;
        for oct in morton::octant_path(key, depth) {
            assert_eq!(oct, cube.octant_of(p), "case {case}");
            cube = cube.octant(oct);
            assert!(cube.contains(p), "case {case}");
        }
    }
}

#[test]
fn octants_partition() {
    let mut rng = SmallRng::seed_from_u64(0x6f63_7461);
    for case in 0..200 {
        let cx = rng.gen_range(-10.0, 10.0);
        let h = rng.gen_range(0.001, 100.0);
        let cube = Cube::new(Vec3::new(cx, -cx, cx * 0.5), h);
        let off = Vec3::new(
            rng.gen_range(-1.0, 1.0),
            rng.gen_range(-1.0, 1.0),
            rng.gen_range(-1.0, 1.0),
        );
        let p = cube.center + off * (h * 0.999);
        assert!(cube.contains(p), "case {case}");
        let containing: usize = (0..8).filter(|&o| cube.octant(o).contains(p)).count();
        assert_eq!(
            containing, 1,
            "case {case}: point must lie in exactly one octant"
        );
        assert!(cube.octant(cube.octant_of(p)).contains(p), "case {case}");
    }
}

#[test]
fn center_of_mass_is_inside_bounding_cube() {
    for case in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(0x636f_6d00 + case);
        let bodies = arb_bodies(&mut rng, 200);
        let tree = SeqTree::build(&bodies, 4);
        let com = match &tree.nodes[tree.root as usize] {
            bh_repro::bh_core::tree::SeqNode::Cell { com, .. } => *com,
            bh_repro::bh_core::tree::SeqNode::Leaf { com, .. } => *com,
        };
        assert!(tree.cube.contains(com) || bodies.len() == 1, "case {case}");
    }
}

#[test]
fn update_algorithm_stays_valid_under_motion() {
    for case in 0..8u64 {
        let mut rng = SmallRng::seed_from_u64(0x7570_6400 + case);
        let bodies = arb_bodies(&mut rng, 200);
        let jitters: Vec<(f64, f64, f64)> = (0..3)
            .map(|_| {
                (
                    rng.gen_range(-0.5, 0.5),
                    rng.gen_range(-0.5, 0.5),
                    rng.gen_range(-0.5, 0.5),
                )
            })
            .collect();
        let procs = rng.gen_range_usize(1, 5);
        let env = NativeEnv::new(procs);
        let world = World::new(&env, &bodies);
        let tree = SharedTree::new(&env, bodies.len(), 8, Algorithm::Update.layout());
        let builder = Builder::new(&env, Algorithm::Update, bodies.len(), 8);
        for (step, j) in jitters.iter().enumerate() {
            spmd(&env, |proc, ctx| {
                let cube = common::bounds_phase(&env, ctx, &world, proc);
                builder.build(&env, ctx, &tree, &world, proc, step as u32, cube);
                env.barrier(ctx);
                builder.com(&env, ctx, &tree, &world, proc, step as u32);
                env.barrier(ctx);
            });
            let summary = validate::validate_with(
                &tree,
                &world.positions(),
                &world.masses(),
                bh_repro::bh_core::tree::validate::ValidateOpts {
                    check_summaries: true,
                    allow_empty_cells: step > 0,
                },
            )
            .unwrap_or_else(|e| panic!("case {case} step {step}: {e}"));
            assert_eq!(summary.bodies, bodies.len(), "case {case} step {step}");
            // Drift every body a little (scaled per body for variety).
            for i in 0..bodies.len() {
                let f = (i % 7) as f64 / 3.0;
                world
                    .pos
                    .poke(i, world.pos.peek(i) + Vec3::new(j.0, j.1, j.2) * f);
            }
        }
    }
}
