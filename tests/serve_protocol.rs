//! End-to-end protocol robustness: a real server on a unix socket, driven
//! through real client connections.
//!
//! The invariants under test: hostile or broken input (malformed JSON,
//! unknown fields, oversized payloads, mid-request disconnects) produces a
//! structured error or a clean close — never a wedged executor; served
//! physics is bitwise-identical to a direct engine run at one processor;
//! and the response stream for a fixed request stream is byte-stable
//! across server instances (the replay gate).

use bh_repro::bh_core::prelude::*;
use bh_repro::bh_serve::client::Client;
use bh_repro::bh_serve::job::{digest_bodies, JobSpec};
use bh_repro::bh_serve::json::Json;
use bh_repro::bh_serve::protocol::MAX_LINE;
use bh_repro::bh_serve::server::{Server, ServerConfig};
use bh_repro::bh_serve::transport::{spawn, Endpoint};
use std::io::Write;
use std::os::unix::net::UnixStream;

/// Each test gets its own socket path (tests run in parallel).
fn test_endpoint(tag: &str) -> Endpoint {
    Endpoint::Unix(
        std::env::temp_dir().join(format!("bh-serve-test-{}-{tag}.sock", std::process::id())),
    )
}

fn start(
    tag: &str,
    config: ServerConfig,
) -> (
    Endpoint,
    std::thread::JoinHandle<std::io::Result<bh_repro::bh_serve::server::ServerStats>>,
) {
    let endpoint = test_endpoint(tag);
    let handle = spawn(Server::start(config), endpoint.clone());
    (endpoint, handle)
}

fn connect(endpoint: &Endpoint) -> Client {
    Client::connect_with_retry(endpoint, 100).expect("connect to test server")
}

fn job_line(id: &str, n: usize) -> String {
    format!(r#"{{"op":"job","id":"{id}","tenant":"t","n":{n},"steps":1,"warmup":0}}"#)
}

fn shutdown_and_join(
    endpoint: &Endpoint,
    handle: std::thread::JoinHandle<std::io::Result<bh_repro::bh_serve::server::ServerStats>>,
) -> bh_repro::bh_serve::server::ServerStats {
    let mut c = connect(endpoint);
    let ack = c.request(r#"{"op":"shutdown"}"#).expect("shutdown ack");
    assert!(ack.contains("shutdown"), "unexpected ack: {ack}");
    handle.join().expect("listener join").expect("listener io")
}

#[test]
fn hostile_input_gets_structured_errors_and_the_executor_survives() {
    let (endpoint, handle) = start("hostile", ServerConfig::default());
    let mut c = connect(&endpoint);

    // Malformed JSON: structured error, connection stays usable.
    let r = c.request("{\"op\":").expect("response to malformed json");
    let doc = Json::parse(&r).expect("error response is valid json");
    assert_eq!(doc.get("error").and_then(Json::as_str), Some("bad_json"));

    // Unknown field: the field is named.
    let r = c
        .request(r#"{"op":"job","id":"x","tenant":"t","n":64,"turbo":9}"#)
        .expect("response to unknown field");
    let doc = Json::parse(&r).unwrap();
    assert_eq!(
        doc.get("error").and_then(Json::as_str),
        Some("unknown_field")
    );
    assert!(r.contains("turbo"), "field not named: {r}");

    // Out-of-range value: rejected at admission, value echoed.
    let r = c
        .request(r#"{"op":"job","id":"x","tenant":"t","n":4}"#)
        .expect("response to bad n");
    let doc = Json::parse(&r).unwrap();
    assert_eq!(doc.get("error").and_then(Json::as_str), Some("bad_request"));

    // Oversized payload: explicit error, and the *same connection* still
    // serves a real job afterwards.
    let huge = format!(
        r#"{{"op":"job","id":"{}","tenant":"t","n":64}}"#,
        "x".repeat(MAX_LINE)
    );
    let r = c.request(&huge).expect("response to oversized line");
    let doc = Json::parse(&r).unwrap();
    assert_eq!(doc.get("error").and_then(Json::as_str), Some("oversized"));

    let r = c
        .request(&job_line("after-hostility", 64))
        .expect("job after errors");
    let doc = Json::parse(&r).unwrap();
    assert_eq!(
        doc.get("ok"),
        Some(&Json::Bool(true)),
        "executor wedged: {r}"
    );

    let stats = shutdown_and_join(&endpoint, handle);
    assert_eq!(stats.served_total, 1);
}

#[test]
fn mid_request_disconnect_is_a_clean_close() {
    let (endpoint, handle) = start("disconnect", ServerConfig::default());

    // Write half a request and slam the connection.
    let Endpoint::Unix(path) = &endpoint else {
        unreachable!()
    };
    for _ in 0..100 {
        if let Ok(mut s) = UnixStream::connect(path) {
            s.write_all(br#"{"op":"job","id":"cut","#).unwrap();
            drop(s);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // The server must keep serving new connections afterwards.
    let mut c = connect(&endpoint);
    let r = c
        .request(&job_line("survivor", 64))
        .expect("job after disconnect");
    let doc = Json::parse(&r).unwrap();
    assert_eq!(
        doc.get("ok"),
        Some(&Json::Bool(true)),
        "server wedged by disconnect: {r}"
    );
    shutdown_and_join(&endpoint, handle);
}

#[test]
fn burst_overruns_the_queue_with_explicit_backpressure() {
    let (endpoint, handle) = start(
        "burst",
        ServerConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServerConfig::default()
        },
    );
    let mut c = connect(&endpoint);
    let total = 16;
    for i in 0..total {
        c.send(&job_line(&format!("b{i}"), 256)).unwrap();
    }
    let (mut ok, mut full) = (0, 0);
    for _ in 0..total {
        let r = c.recv().expect("burst response");
        let doc = Json::parse(&r).unwrap();
        if doc.get("ok") == Some(&Json::Bool(true)) {
            ok += 1;
        } else {
            assert_eq!(
                doc.get("error").and_then(Json::as_str),
                Some("queue_full"),
                "unexpected failure: {r}"
            );
            full += 1;
        }
    }
    assert!(ok > 0, "no job ran at all");
    assert!(full > 0, "queue never filled: capacity 2, burst {total}");
    let stats = shutdown_and_join(&endpoint, handle);
    assert_eq!(stats.served_total, ok);
    assert_eq!(stats.rejected_full, full);
}

#[test]
fn served_physics_is_bitwise_identical_to_a_direct_run() {
    let (endpoint, handle) = start("digest", ServerConfig::default());
    let mut c = connect(&endpoint);
    let r = c.request(&job_line("d1", 128)).expect("job response");
    let doc = Json::parse(&r).unwrap();
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{r}");
    let served =
        u64::from_str_radix(doc.get("digest").and_then(Json::as_str).unwrap(), 16).unwrap();

    // The same spec, run directly in this process.
    let mut spec = JobSpec::defaults(128);
    spec.warmup = 0;
    let (_, state) = run_simulation_with_state(&NativeEnv::new(1), &spec.config(), &spec.bodies());
    assert_eq!(served, digest_bodies(&state), "served physics diverged");
    shutdown_and_join(&endpoint, handle);
}

#[test]
fn response_stream_is_byte_stable_across_server_instances() {
    // Two fresh single-worker servers fed the identical request stream
    // must produce identical response bytes: responses carry only
    // deterministic fields, and one worker makes completion order the
    // submission order.
    let requests: Vec<String> = (0..6)
        .map(|i| {
            format!(
                r#"{{"op":"job","id":"r{i}","tenant":"t","n":64,"steps":2,"warmup":0,"scenario":"{}"}}"#,
                ["plummer", "uniform", "collision"][i % 3]
            )
        })
        .collect();

    let mut streams = Vec::new();
    for round in 0..2 {
        let (endpoint, handle) = start(
            &format!("replay{round}"),
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        );
        let mut c = connect(&endpoint);
        let mut responses = Vec::new();
        for req in &requests {
            responses.push(c.request(req).expect("replay response"));
        }
        shutdown_and_join(&endpoint, handle);
        streams.push(responses.join("\n"));
    }
    assert_eq!(streams[0], streams[1], "response stream not byte-stable");
}

#[test]
fn stats_op_reports_the_work_done() {
    let (endpoint, handle) = start("stats", ServerConfig::default());
    let mut c = connect(&endpoint);
    for i in 0..3 {
        let r = c.request(&job_line(&format!("s{i}"), 64)).unwrap();
        let doc = Json::parse(&r).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "{r}");
    }
    let r = c.request(r#"{"op":"stats"}"#).expect("stats response");
    let doc = Json::parse(&r).expect("stats is valid json");
    let num = |k: &str| doc.get(k).and_then(Json::as_f64).unwrap_or(-1.0);
    assert_eq!(num("served_total"), 3.0, "{r}");
    assert_eq!(num("queue_depth"), 0.0, "{r}");
    assert!(num("cache_hits") + num("cache_misses") >= 3.0, "{r}");
    assert!(num("depth_p50") >= 0.0 && num("depth_p99") >= 0.0, "{r}");
    let tenants = doc
        .get("tenants")
        .and_then(Json::as_array)
        .expect("tenants array");
    assert!(
        tenants
            .iter()
            .any(|t| t.get("tenant").and_then(Json::as_str) == Some("t")),
        "{r}"
    );
    shutdown_and_join(&endpoint, handle);
}
