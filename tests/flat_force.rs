//! Equivalence of the force-phase kernels over the flat tree snapshot: the
//! batched traversal/evaluation kernel, the per-body flat walk, and the
//! recursive walk over the shared tree.
//!
//! The flat walk is an explicit-stack pre-order DFS visiting children in
//! octant order — the exact traversal of the recursive walk — and the
//! flatten pass prunes the same husk/empty nodes the recursive walk skips,
//! so on a deterministic build (one processor) the floating-point operation
//! sequence is identical and results must match **bitwise**. The batched
//! kernel at `group_size = 1` degenerates to a per-body list applied in the
//! same DFS order, so it joins the bitwise family; at `group_size > 1`
//! every body's interaction *multiset* is still identical (the group
//! bounding-sphere classification is conservative) but the summation order
//! differs, so those runs agree to ≤1e-12 relative instead. With several
//! processors the leaf body order of the lock-based builders depends on
//! scheduling, which reassociates leaf and center-of-mass summations; there
//! the runs agree to the cross-algorithm suite's documented tolerance.

use bh_repro::bh_core::force::{group_window, zone_group_windows};
use bh_repro::bh_core::prelude::*;
use bh_repro::bh_core::rng::SmallRng;

/// Run `steps` steps and return the final bodies. `group_size` selects the
/// force kernel: `0` the per-body flat walk, `>= 1` the batched kernel
/// (only meaningful when `flat` is true).
fn run_grouped(
    alg: Algorithm,
    procs: usize,
    flat: bool,
    group_size: usize,
    bodies: &[Body],
    steps: usize,
) -> Vec<Body> {
    let env = NativeEnv::new(procs);
    let mut cfg = SimConfig::new(alg);
    cfg.warmup_steps = 0;
    cfg.measured_steps = steps;
    cfg.flat_force = flat;
    cfg.group_size = group_size;
    let (stats, state) = run_simulation_with_state(&env, &cfg, bodies);
    stats.assert_valid();
    state
}

fn run(alg: Algorithm, procs: usize, flat: bool, bodies: &[Body], steps: usize) -> Vec<Body> {
    // The bitwise reference configuration: per-body lists.
    run_grouped(alg, procs, flat, 1, bodies, steps)
}

fn assert_bitwise(label: &str, a: &[Body], b: &[Body]) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        for (p, q) in [
            (x.pos.x, y.pos.x),
            (x.pos.y, y.pos.y),
            (x.pos.z, y.pos.z),
            (x.vel.x, y.vel.x),
            (x.vel.y, y.vel.y),
            (x.vel.z, y.vel.z),
        ] {
            assert_eq!(
                p.to_bits(),
                q.to_bits(),
                "{label}: body {i} differs ({p:?} vs {q:?})"
            );
        }
    }
}

/// Worst relative position difference between two final states.
fn worst_rel(a: &[Body], b: &[Body]) -> f64 {
    let mut worst = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        worst = worst.max(x.pos.dist(y.pos) / x.pos.norm().max(1.0));
    }
    worst
}

#[test]
fn flat_walk_is_bitwise_identical_on_one_processor() {
    let bodies = Model::Plummer.generate(1200, 42);
    for alg in Algorithm::ALL {
        if alg.builds_flat_directly() {
            // MORTON has no recursive walk to compare against (it never
            // builds the linked tree); its own bitwise gate is below.
            continue;
        }
        let flat = run(alg, 1, true, &bodies, 3);
        let rec = run(alg, 1, false, &bodies, 3);
        assert_bitwise(&format!("{alg} flat vs recursive"), &flat, &rec);
    }
}

#[test]
fn grouped_kernel_is_bitwise_identical_at_group_size_one() {
    // The heart of the batched kernel's correctness story: a group of one
    // is a point sphere, the group test is the member's own criterion, the
    // self entry is skipped at emission, and evaluation replays the DFS
    // emission order — so `group_size = 1` must reproduce the per-body
    // flat walk bit for bit, for all six algorithms.
    let bodies = Model::Plummer.generate(1200, 42);
    for alg in Algorithm::ALL {
        let grouped = run_grouped(alg, 1, true, 1, &bodies, 3);
        let per_body = run_grouped(alg, 1, true, 0, &bodies, 3);
        assert_bitwise(&format!("{alg} gs=1 vs per-body"), &grouped, &per_body);
    }
}

#[test]
fn grouped_kernel_matches_per_body_within_tolerance() {
    // At group_size > 1 the interaction multiset is unchanged (the
    // bounding-sphere classification is conservative; the mixed band is
    // resolved per member with the exact criterion) — only the summation
    // order differs, so the drift over a few steps stays far below the
    // 1e-12 relative bound for every algorithm and several group sizes.
    let bodies = Model::Plummer.generate(1000, 42);
    for alg in Algorithm::ALL {
        let per_body = run_grouped(alg, 1, true, 0, &bodies, 2);
        for gs in [2, 16, 33] {
            let grouped = run_grouped(alg, 1, true, gs, &bodies, 2);
            let worst = worst_rel(&grouped, &per_body);
            assert!(
                worst < 1e-12,
                "{alg} gs={gs}: grouped vs per-body drifted by {worst:e}"
            );
        }
    }
}

#[test]
fn grouped_kernel_interaction_totals_match_per_body() {
    // Conservative classification means the *count* of interactions is
    // identical too, not just the physics: the batched kernel reports the
    // same total at every group size (the per-step costs it stores are
    // what costzones partitions on).
    let env = NativeEnv::new(1);
    let bodies = Model::Plummer.generate(600, 9);
    let mut totals = Vec::new();
    for gs in [1usize, 4, 16, 64] {
        let mut cfg = SimConfig::new(Algorithm::Morton);
        cfg.warmup_steps = 0;
        cfg.measured_steps = 2;
        cfg.group_size = gs;
        let stats = run_simulation(&env, &cfg, &bodies);
        stats.assert_valid();
        assert!(stats.force_groups() > 0, "gs={gs}: no groups recorded");
        assert!(stats.force_list_entries() > 0, "gs={gs}: empty lists");
        totals.push(stats.force_interactions());
    }
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "interaction totals vary with group size: {totals:?}"
    );
}

#[test]
fn group_boundaries_never_change_list_membership() {
    // Randomized property: group windows are aligned to absolute order
    // indices, so *which bodies share a list* is a function of
    // (index, group_size, n) alone — no zone partition can change it, and
    // the applied sub-ranges of any partition tile [0, n) exactly once.
    let mut rng = SmallRng::seed_from_u64(0x6c69_7374);
    for case in 0..200u32 {
        let n = rng.gen_range_usize(1, 400);
        let gs = rng.gen_range_usize(1, 50);
        let procs = rng.gen_range_usize(1, 9);
        // Random monotone zone cuts over [0, n).
        let mut cuts: Vec<usize> = (0..procs - 1)
            .map(|_| rng.gen_range_usize(0, n + 1))
            .collect();
        cuts.sort_unstable();
        let mut bounds = vec![0];
        bounds.extend(cuts);
        bounds.push(n);
        let mut covered = vec![0u32; n];
        for q in 0..procs {
            let (s, e) = (bounds[q], bounds[q + 1]);
            for (w0, w1, a0, a1) in zone_group_windows(s, e, gs, n) {
                assert!(s <= a0 && a1 <= e, "case {case}: applied range leaves zone");
                for (i, c) in covered.iter_mut().enumerate().take(a1).skip(a0) {
                    assert_eq!(
                        group_window(i, gs, n),
                        (w0, w1),
                        "case {case}: zone [{s},{e}) changed body {i}'s group"
                    );
                    *c += 1;
                }
            }
        }
        assert!(
            covered.iter().all(|&c| c == 1),
            "case {case}: applied ranges do not tile [0, {n}) exactly once"
        );
    }
}

#[test]
fn flat_walk_matches_recursive_in_parallel() {
    let bodies = Model::TwoClusterCollision.generate(1500, 7);
    for alg in Algorithm::ALL {
        if alg.builds_flat_directly() {
            continue;
        }
        // Default config: the batched kernel vs the recursive walk.
        let flat = run_grouped(alg, 4, true, 16, &bodies, 2);
        let rec = run_grouped(alg, 4, false, 16, &bodies, 2);
        let mut worst = 0.0f64;
        for (a, b) in flat.iter().zip(&rec) {
            worst = worst.max(a.pos.dist(b.pos));
        }
        assert!(worst < 1e-9, "{alg}: flat vs recursive diverged by {worst}");
    }
}

#[test]
fn morton_matches_sequential_builder_bitwise_on_one_processor() {
    // MORTON builds the flat tree straight from the sorted key array, so its
    // reference is not a recursive walk of its own tree (there is none) but
    // the sequential builder itself: for a given body set and leaf threshold
    // the octree is unique, the quantized key path routes exactly like the
    // geometric descent, leaves hold bodies in ascending id, and both walks
    // visit children in octant order — the floating-point op sequence is
    // identical, so one-processor trajectories must match bitwise (with
    // per-body lists; larger groups reorder summation by design).
    use bh_repro::bh_core::seq_app::seq_run;
    let bodies = Model::Plummer.generate(1200, 42);
    let steps = 3;
    let par = run(Algorithm::Morton, 1, true, &bodies, steps);
    let mut seq = bodies.clone();
    let cfg = SimConfig::new(Algorithm::Morton);
    seq_run(&mut seq, cfg.k, &cfg.force, cfg.dt, steps);
    assert_bitwise("MORTON vs sequential", &par, &seq);
}

#[test]
fn morton_is_bitwise_processor_count_independent() {
    // The sorted (key, id) array is schedule-independent, the leaf partition
    // is determined by keys and k alone, and every node's mass summation
    // runs over a fixed order (ascending id in leaves, octant order in
    // cells) — so the processor count must not perturb a single bit. This
    // runs the default (batched, group_size = 16) kernel: group windows are
    // aligned to absolute order indices and a split window is traversed
    // identically by both owners, so grouping preserves the property.
    let bodies = Model::TwoClusterCollision.generate(1500, 7);
    let one = run_grouped(Algorithm::Morton, 1, true, 16, &bodies, 2);
    for procs in [2, 4] {
        let many = run_grouped(Algorithm::Morton, procs, true, 16, &bodies, 2);
        assert_bitwise(&format!("MORTON {procs}p vs 1p"), &one, &many);
    }
}

#[test]
fn flat_walk_is_valid_on_simulated_platform() {
    // The cooperative flatten uses plain loads/stores separated by barriers;
    // it must produce a correct snapshot under a simulated machine's timing
    // as well (physics agreement with the native run).
    use bh_repro::ssmp::{platform, Machine};
    let bodies = Model::Plummer.generate(800, 23);
    let native = run_grouped(Algorithm::Space, 2, true, 16, &bodies, 2);
    let machine = Machine::new(platform::origin2000(4), 4);
    let mut cfg = SimConfig::new(Algorithm::Space);
    cfg.warmup_steps = 0;
    cfg.measured_steps = 2;
    let (stats, simulated) = run_simulation_with_state(&machine, &cfg, &bodies);
    stats.assert_valid();
    assert!(stats.flatten_cycles() > 0, "flatten cost must be charged");
    assert!(
        stats.force_groups() > 0 && stats.force_list_entries() > 0,
        "batched kernel must report list metrics on simulated platforms"
    );
    for (a, b) in native.iter().zip(&simulated) {
        assert!(a.pos.dist(b.pos) < 1e-9, "simulation changed the physics");
    }
}
