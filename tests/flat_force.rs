//! Equivalence of the force phase over the flat tree snapshot and the
//! recursive walk over the shared tree.
//!
//! The flat walk is an explicit-stack pre-order DFS visiting children in
//! octant order — the exact traversal of the recursive walk — and the
//! flatten pass prunes the same husk/empty nodes the recursive walk skips,
//! so on a deterministic build (one processor) the floating-point operation
//! sequence is identical and results must match **bitwise**. With several
//! processors the leaf body order of the lock-based builders depends on
//! scheduling, which reassociates leaf and center-of-mass summations; there
//! the runs agree to tight tolerance instead (same documented tolerance the
//! cross-algorithm suite uses).

use bh_repro::bh_core::prelude::*;

fn run(alg: Algorithm, procs: usize, flat: bool, bodies: &[Body], steps: usize) -> Vec<Body> {
    let env = NativeEnv::new(procs);
    let mut cfg = SimConfig::new(alg);
    cfg.warmup_steps = 0;
    cfg.measured_steps = steps;
    cfg.flat_force = flat;
    let (stats, state) = run_simulation_with_state(&env, &cfg, bodies);
    stats.assert_valid();
    state
}

#[test]
fn flat_walk_is_bitwise_identical_on_one_processor() {
    let bodies = Model::Plummer.generate(1200, 42);
    for alg in Algorithm::ALL {
        if alg.builds_flat_directly() {
            // MORTON has no recursive walk to compare against (it never
            // builds the linked tree); its own bitwise gate is below.
            continue;
        }
        let flat = run(alg, 1, true, &bodies, 3);
        let rec = run(alg, 1, false, &bodies, 3);
        for (i, (a, b)) in flat.iter().zip(&rec).enumerate() {
            for (x, y) in [
                (a.pos.x, b.pos.x),
                (a.pos.y, b.pos.y),
                (a.pos.z, b.pos.z),
                (a.vel.x, b.vel.x),
                (a.vel.y, b.vel.y),
                (a.vel.z, b.vel.z),
            ] {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{alg}: body {i} differs between flat ({x:?}) and recursive ({y:?}) walks"
                );
            }
        }
    }
}

#[test]
fn flat_walk_matches_recursive_in_parallel() {
    let bodies = Model::TwoClusterCollision.generate(1500, 7);
    for alg in Algorithm::ALL {
        if alg.builds_flat_directly() {
            continue;
        }
        let flat = run(alg, 4, true, &bodies, 2);
        let rec = run(alg, 4, false, &bodies, 2);
        let mut worst = 0.0f64;
        for (a, b) in flat.iter().zip(&rec) {
            worst = worst.max(a.pos.dist(b.pos));
        }
        assert!(worst < 1e-9, "{alg}: flat vs recursive diverged by {worst}");
    }
}

#[test]
fn morton_matches_sequential_builder_bitwise_on_one_processor() {
    // MORTON builds the flat tree straight from the sorted key array, so its
    // reference is not a recursive walk of its own tree (there is none) but
    // the sequential builder itself: for a given body set and leaf threshold
    // the octree is unique, the quantized key path routes exactly like the
    // geometric descent, leaves hold bodies in ascending id, and both walks
    // visit children in octant order — the floating-point op sequence is
    // identical, so one-processor trajectories must match bitwise.
    use bh_repro::bh_core::seq_app::seq_run;
    let bodies = Model::Plummer.generate(1200, 42);
    let steps = 3;
    let par = run(Algorithm::Morton, 1, true, &bodies, steps);
    let mut seq = bodies.clone();
    let cfg = SimConfig::new(Algorithm::Morton);
    seq_run(&mut seq, cfg.k, &cfg.force, cfg.dt, steps);
    for (i, (a, b)) in par.iter().zip(&seq).enumerate() {
        for (x, y) in [
            (a.pos.x, b.pos.x),
            (a.pos.y, b.pos.y),
            (a.pos.z, b.pos.z),
            (a.vel.x, b.vel.x),
            (a.vel.y, b.vel.y),
            (a.vel.z, b.vel.z),
        ] {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "body {i} differs between MORTON ({x:?}) and sequential ({y:?})"
            );
        }
    }
}

#[test]
fn morton_is_bitwise_processor_count_independent() {
    // The sorted (key, id) array is schedule-independent, the leaf partition
    // is determined by keys and k alone, and every node's mass summation
    // runs over a fixed order (ascending id in leaves, octant order in
    // cells) — so the processor count must not perturb a single bit.
    let bodies = Model::TwoClusterCollision.generate(1500, 7);
    let one = run(Algorithm::Morton, 1, true, &bodies, 2);
    for procs in [2, 4] {
        let many = run(Algorithm::Morton, procs, true, &bodies, 2);
        for (i, (a, b)) in one.iter().zip(&many).enumerate() {
            assert_eq!(
                a.pos.x.to_bits(),
                b.pos.x.to_bits(),
                "body {i} x drifted at {procs} procs"
            );
            assert_eq!(a.pos.y.to_bits(), b.pos.y.to_bits(), "body {i} y");
            assert_eq!(a.pos.z.to_bits(), b.pos.z.to_bits(), "body {i} z");
            assert_eq!(a.vel.x.to_bits(), b.vel.x.to_bits(), "body {i} vx");
            assert_eq!(a.vel.y.to_bits(), b.vel.y.to_bits(), "body {i} vy");
            assert_eq!(a.vel.z.to_bits(), b.vel.z.to_bits(), "body {i} vz");
        }
    }
}

#[test]
fn flat_walk_is_valid_on_simulated_platform() {
    // The cooperative flatten uses plain loads/stores separated by barriers;
    // it must produce a correct snapshot under a simulated machine's timing
    // as well (physics agreement with the native run).
    use bh_repro::ssmp::{platform, Machine};
    let bodies = Model::Plummer.generate(800, 23);
    let native = run(Algorithm::Space, 2, true, &bodies, 2);
    let machine = Machine::new(platform::origin2000(4), 4);
    let mut cfg = SimConfig::new(Algorithm::Space);
    cfg.warmup_steps = 0;
    cfg.measured_steps = 2;
    let (stats, simulated) = run_simulation_with_state(&machine, &cfg, &bodies);
    stats.assert_valid();
    assert!(stats.flatten_cycles() > 0, "flatten cost must be charged");
    for (a, b) in native.iter().zip(&simulated) {
        assert!(a.pos.dist(b.pos) < 1e-9, "simulation changed the physics");
    }
}
