//! Equivalence of the force phase over the flat tree snapshot and the
//! recursive walk over the shared tree.
//!
//! The flat walk is an explicit-stack pre-order DFS visiting children in
//! octant order — the exact traversal of the recursive walk — and the
//! flatten pass prunes the same husk/empty nodes the recursive walk skips,
//! so on a deterministic build (one processor) the floating-point operation
//! sequence is identical and results must match **bitwise**. With several
//! processors the leaf body order of the lock-based builders depends on
//! scheduling, which reassociates leaf and center-of-mass summations; there
//! the runs agree to tight tolerance instead (same documented tolerance the
//! cross-algorithm suite uses).

use bh_repro::bh_core::prelude::*;

fn run(alg: Algorithm, procs: usize, flat: bool, bodies: &[Body], steps: usize) -> Vec<Body> {
    let env = NativeEnv::new(procs);
    let mut cfg = SimConfig::new(alg);
    cfg.warmup_steps = 0;
    cfg.measured_steps = steps;
    cfg.flat_force = flat;
    let (stats, state) = run_simulation_with_state(&env, &cfg, bodies);
    stats.assert_valid();
    state
}

#[test]
fn flat_walk_is_bitwise_identical_on_one_processor() {
    let bodies = Model::Plummer.generate(1200, 42);
    for alg in Algorithm::ALL {
        let flat = run(alg, 1, true, &bodies, 3);
        let rec = run(alg, 1, false, &bodies, 3);
        for (i, (a, b)) in flat.iter().zip(&rec).enumerate() {
            for (x, y) in [
                (a.pos.x, b.pos.x),
                (a.pos.y, b.pos.y),
                (a.pos.z, b.pos.z),
                (a.vel.x, b.vel.x),
                (a.vel.y, b.vel.y),
                (a.vel.z, b.vel.z),
            ] {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{alg}: body {i} differs between flat ({x:?}) and recursive ({y:?}) walks"
                );
            }
        }
    }
}

#[test]
fn flat_walk_matches_recursive_in_parallel() {
    let bodies = Model::TwoClusterCollision.generate(1500, 7);
    for alg in Algorithm::ALL {
        let flat = run(alg, 4, true, &bodies, 2);
        let rec = run(alg, 4, false, &bodies, 2);
        let mut worst = 0.0f64;
        for (a, b) in flat.iter().zip(&rec) {
            worst = worst.max(a.pos.dist(b.pos));
        }
        assert!(worst < 1e-9, "{alg}: flat vs recursive diverged by {worst}");
    }
}

#[test]
fn flat_walk_is_valid_on_simulated_platform() {
    // The cooperative flatten uses plain loads/stores separated by barriers;
    // it must produce a correct snapshot under a simulated machine's timing
    // as well (physics agreement with the native run).
    use bh_repro::ssmp::{platform, Machine};
    let bodies = Model::Plummer.generate(800, 23);
    let native = run(Algorithm::Space, 2, true, &bodies, 2);
    let machine = Machine::new(platform::origin2000(4), 4);
    let mut cfg = SimConfig::new(Algorithm::Space);
    cfg.warmup_steps = 0;
    cfg.measured_steps = 2;
    let (stats, simulated) = run_simulation_with_state(&machine, &cfg, &bodies);
    stats.assert_valid();
    assert!(stats.flatten_cycles() > 0, "flatten cost must be charged");
    for (a, b) in native.iter().zip(&simulated) {
        assert!(a.pos.dist(b.pos) < 1e-9, "simulation changed the physics");
    }
}
