//! Cross-crate integration: all five tree-building algorithms must agree —
//! structurally with the sequential reference tree, and physically with each
//! other (same forces, same trajectories) — both natively and on simulated
//! platforms.

use bh_repro::bh_core::prelude::*;
use bh_repro::ssmp::{platform, Machine};

fn run_steps(env_procs: usize, alg: Algorithm, bodies: &[Body], steps: usize) -> Vec<Body> {
    let env = NativeEnv::new(env_procs);
    let mut cfg = SimConfig::new(alg);
    cfg.warmup_steps = 0;
    cfg.measured_steps = steps;
    let (stats, state) = run_simulation_with_state(&env, &cfg, bodies);
    stats.assert_valid();
    state
}

#[test]
fn all_algorithms_produce_identical_trajectories() {
    // Identical trees + identical (deterministic) force evaluation means the
    // five algorithms must evolve the galaxy identically, bit for bit is too
    // strict (summation order differs), but to tight tolerance.
    let n = 1500;
    let bodies = Model::Plummer.generate(n, 3001);
    let reference = run_steps(1, Algorithm::Local, &bodies, 3);
    for alg in Algorithm::ALL {
        let state = run_steps(4, alg, &bodies, 3);
        let mut worst = 0.0f64;
        for (a, b) in reference.iter().zip(&state) {
            worst = worst.max(a.pos.dist(b.pos));
        }
        // The rebuild algorithms construct the *same* tree, so they must
        // agree to rounding. UPDATE intentionally keeps a structurally
        // different (non-collapsed) tree after step 0, which changes the
        // Barnes-Hut grouping slightly — allow the approximation-level
        // difference there.
        let tol = if alg == Algorithm::Update { 5e-3 } else { 1e-9 };
        assert!(worst < tol, "{alg}: trajectories diverged by {worst}");
    }
}

#[test]
fn rebuild_algorithms_match_reference_structure_on_simulated_platforms() {
    // The same algorithm code runs on a simulated machine and must produce
    // the same valid tree; validation runs inside run_simulation.
    let bodies = Model::TwoClusterCollision.generate(1200, 5);
    for cost in platform::all_platforms(4) {
        for alg in Algorithm::ALL {
            let machine = Machine::new(cost.clone(), 4);
            let mut cfg = SimConfig::new(alg);
            cfg.warmup_steps = 1;
            cfg.measured_steps = 1;
            let stats = run_simulation(&machine, &cfg, &bodies);
            assert!(
                stats.validation_error.is_none(),
                "{} on {}: {:?}",
                alg,
                cost.name,
                stats.validation_error
            );
        }
    }
}

#[test]
fn native_and_simulated_runs_agree_physically() {
    let n = 800;
    let bodies = Model::Plummer.generate(n, 77);
    let native = run_steps(2, Algorithm::Space, &bodies, 2);

    let machine = Machine::new(platform::origin2000(4), 4);
    let mut cfg = SimConfig::new(Algorithm::Space);
    cfg.warmup_steps = 0;
    cfg.measured_steps = 2;
    let (stats, simulated) = run_simulation_with_state(&machine, &cfg, &bodies);
    stats.assert_valid();

    for (a, b) in native.iter().zip(&simulated) {
        assert!(a.pos.dist(b.pos) < 1e-9, "simulation changed the physics");
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let bodies = Model::UniformSphere.generate(700, 9);
    let one = run_steps(1, Algorithm::Partree, &bodies, 2);
    for procs in [2, 3, 8] {
        let many = run_steps(procs, Algorithm::Partree, &bodies, 2);
        for (a, b) in one.iter().zip(&many) {
            assert!(a.pos.dist(b.pos) < 1e-9, "{procs} threads diverged");
        }
    }
}

#[test]
fn space_threshold_does_not_change_structure() {
    let n = 900;
    let bodies = Model::Plummer.generate(n, 13);
    let base = run_steps(1, Algorithm::Local, &bodies, 1);
    for threshold in [8usize, 32, 256, 100_000] {
        let env = NativeEnv::new(4);
        let mut cfg = SimConfig::new(Algorithm::Space);
        cfg.space_threshold = Some(threshold);
        cfg.warmup_steps = 0;
        cfg.measured_steps = 1;
        let (stats, state) = run_simulation_with_state(&env, &cfg, &bodies);
        stats.assert_valid();
        for (a, b) in base.iter().zip(&state) {
            assert!(a.pos.dist(b.pos) < 1e-9, "threshold {threshold} diverged");
        }
    }
}

#[test]
fn leaf_capacity_sweep_is_valid_and_equivalent() {
    // Different k produce different trees but identical physics at theta->0
    // is too slow; instead check each k validates and BH forces stay within
    // the approximation's own variation.
    let bodies = Model::Plummer.generate(600, 21);
    let mut finals: Vec<Vec<Body>> = Vec::new();
    for k in [1usize, 2, 4, 8, 16] {
        let env = NativeEnv::new(4);
        let mut cfg = SimConfig::new(Algorithm::Local);
        cfg.k = k;
        cfg.warmup_steps = 0;
        cfg.measured_steps = 1;
        let (stats, state) = run_simulation_with_state(&env, &cfg, &bodies);
        stats.assert_valid();
        finals.push(state);
    }
    // Positions after one step should be close across k (same physics, the
    // opening criterion sees slightly different cells).
    for pair in finals.windows(2) {
        let drift: f64 = pair[0]
            .iter()
            .zip(&pair[1])
            .map(|(a, b)| a.pos.dist(b.pos))
            .sum::<f64>()
            / pair[0].len() as f64;
        assert!(drift < 1e-3, "k-variation drift {drift}");
    }
}
