//! Race-freedom certification of the six tree-building algorithms.
//!
//! Every run executes the full application pipeline (bounds, build, com,
//! costzones, force, update) under [`CheckedEnv`], the happens-before
//! vector-clock detector over the `Env` abstraction, and asserts that no
//! unsynchronized conflicting access pair was observed. A deliberately
//! seeded race and a deliberate false-sharing pattern confirm the detector
//! actually fires (the matrix would otherwise pass vacuously).

use bh_repro::bh_core::harness::spmd;
use bh_repro::bh_core::prelude::*;
use bh_repro::bh_core::shared::SharedVec;

/// Run one full simulation under the detector and assert race-freedom.
/// The default `SimConfig` routes every run through the flat-snapshot force
/// path (cooperative flatten), the periodic Morton reorder, and — for SPACE
/// — the cost-weighted assignment, so the matrix certifies those too.
fn certify_cfg(mut cfg: SimConfig, procs: usize, model: Model, n: usize) {
    let env = CheckedEnv::new(NativeEnv::new(procs));
    let bodies = model.generate(n, 1998);
    cfg.k = 4; // deeper trees at small n: more lock/atomic interleaving
    cfg.warmup_steps = 1;
    cfg.measured_steps = 2;
    let alg = cfg.algorithm;
    let stats = run_simulation(&env, &cfg, &bodies);
    stats.assert_valid();
    let races = env.races();
    assert!(
        races.is_empty(),
        "{alg} procs={procs} {model:?}: {} race(s), first:\n  {}",
        races.len(),
        races
            .iter()
            .take(8)
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join("\n  ")
    );
}

fn certify(alg: Algorithm, procs: usize, model: Model, n: usize) {
    certify_cfg(SimConfig::new(alg), procs, model, n);
}

const ALL_ALGS: [Algorithm; 6] = [
    Algorithm::Orig,
    Algorithm::Local,
    Algorithm::Update,
    Algorithm::Partree,
    Algorithm::Space,
    Algorithm::Morton,
];

#[test]
fn all_algorithms_race_free_plummer() {
    for alg in ALL_ALGS {
        for procs in [2, 8] {
            certify(alg, procs, Model::Plummer, 96);
        }
    }
}

#[test]
#[ignore = "full processor matrix; run with --ignored"]
fn all_algorithms_race_free_plummer_full() {
    for alg in ALL_ALGS {
        for procs in [1, 2, 4, 8] {
            certify(alg, procs, Model::Plummer, 96);
        }
    }
}

#[test]
fn all_algorithms_race_free_uneven_distribution() {
    // The two-cluster collision model concentrates bodies in two dense
    // clumps: deep unbalanced subtrees, maximal contention on a few cells.
    for alg in ALL_ALGS {
        certify(alg, 4, Model::TwoClusterCollision, 96);
    }
}

#[test]
#[ignore = "full processor matrix; run with --ignored"]
fn all_algorithms_race_free_uneven_distribution_full() {
    for alg in ALL_ALGS {
        for procs in [2, 4, 8] {
            certify(alg, procs, Model::TwoClusterCollision, 96);
        }
    }
}

#[test]
fn flatten_and_cost_rebalance_race_free() {
    // Stress the new machinery directly: Morton reorder every step, an
    // aggressive SPACE cost ceiling (many extra refinement rounds over the
    // shared totals), and the cooperative flatten on every step.
    for alg in [Algorithm::Space, Algorithm::Local] {
        for procs in [2, 8] {
            let mut cfg = SimConfig::new(alg);
            cfg.morton_every = 1;
            cfg.space_rebalance = 0.05;
            certify_cfg(cfg, procs, Model::TwoClusterCollision, 96);
        }
    }
}

#[test]
fn recursive_force_ablation_race_free() {
    // The `flat_force = false` ablation path must stay certified too.
    for alg in [Algorithm::Orig, Algorithm::Space] {
        let mut cfg = SimConfig::new(alg);
        cfg.flat_force = false;
        certify_cfg(cfg, 4, Model::Plummer, 96);
    }
}

#[test]
fn grouped_force_kernel_group_sizes_race_free() {
    // The default matrix already certifies the batched kernel at
    // group_size = 16; this cell covers the knob's edges: the per-body flat
    // walk ablation (0), per-body lists (1), and an odd size that leaves a
    // remainder window straddling zone boundaries. Group windows may span
    // two processors' zones — both traverse the shared snapshot read-only
    // and emit only into their own scratch rows, so no cell may race.
    for gs in [0usize, 1, 7] {
        for alg in [Algorithm::Orig, Algorithm::Morton] {
            let mut cfg = SimConfig::new(alg);
            cfg.group_size = gs;
            certify_cfg(cfg, 4, Model::Plummer, 96);
        }
    }
}

#[test]
fn reused_engine_back_to_back_jobs_race_free() {
    // A SimEngine keeps its worker pool and shared allocations alive across
    // jobs; the detector's clocks persist at the environment level, and each
    // run ends with a barrier, so successive sessions chain correctly. Two
    // back-to-back SPACE jobs on reused state plus a LOCAL job must all be
    // certified — a reset() that skipped a shared array would surface here
    // as an unordered write/read pair across jobs.
    let mut engine = SimEngine::new(CheckedEnv::new(NativeEnv::new(4)));
    let bodies = Model::Plummer.generate(96, 1998);
    for alg in [Algorithm::Space, Algorithm::Space, Algorithm::Local] {
        let mut cfg = SimConfig::new(alg);
        cfg.k = 4;
        cfg.warmup_steps = 1;
        cfg.measured_steps = 2;
        let stats = engine.run(&cfg, &bodies);
        stats.assert_valid();
    }
    let races = engine.env().races();
    assert!(
        races.is_empty(),
        "reused engine: {} race(s), first:\n  {}",
        races.len(),
        races
            .iter()
            .take(8)
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join("\n  ")
    );
}

#[test]
fn seeded_race_is_caught() {
    // Unsynchronized read-modify-write on a plain shared word: the classic
    // lost-update race. The detector must report it.
    let env = CheckedEnv::new(NativeEnv::new(4));
    let v: SharedVec<u64> = SharedVec::new(&env, 1, 0, Placement::Global);
    spmd(&env, |_proc, ctx| {
        for _ in 0..16 {
            let x = v.load(&env, ctx, 0);
            v.store(&env, ctx, 0, x + 1);
        }
    });
    let races = env.races();
    assert!(!races.is_empty(), "seeded lost-update race went undetected");
    assert!(races.iter().all(|r| r.first.proc != r.second.proc));
}

#[test]
fn seeded_racy_tree_phase_is_caught() {
    // A broken "parallel" loop over one shared accumulator, barrier-free:
    // models the kind of bug the ORIG algorithm's per-cell locks prevent.
    let env = CheckedEnv::new(NativeEnv::new(2));
    let acc: SharedVec<f64> = SharedVec::new(&env, 4, 0.0, Placement::Global);
    spmd(&env, |proc, ctx| {
        if proc == 0 {
            for i in 0..4 {
                acc.store(&env, ctx, i, i as f64);
            }
        } else {
            let mut s = 0.0;
            for i in 0..4 {
                s += acc.load(&env, ctx, i);
            }
            std::hint::black_box(s);
        }
    });
    assert!(
        !env.races().is_empty(),
        "unordered write/read phase went undetected"
    );
}

#[test]
fn cache_line_mode_flags_false_sharing() {
    // Per-processor counters packed 8 bytes apart: race-free, but all in
    // one 64-byte line. Element mode is silent; line mode flags it.
    let env = CheckedEnv::with_granularity(NativeEnv::new(4), Granularity::CacheLine(64));
    let counters: SharedVec<u64> = SharedVec::new(&env, 4, 0, Placement::Global);
    spmd(&env, |proc, ctx| {
        for _ in 0..8 {
            let x = counters.load(&env, ctx, proc);
            counters.store(&env, ctx, proc, x + 1);
        }
    });
    env.assert_race_free();
    assert!(
        !env.false_sharing().is_empty(),
        "same-line cross-processor writes must be flagged as false sharing"
    );
}

#[test]
fn tracing_composes_with_detector() {
    // TraceEnv and CheckedEnv stack: tracing must not perturb the
    // happens-before certification, and the trace must still see all four
    // phases plus ORIG's lock traffic through the detector layer.
    let env = TraceEnv::new(CheckedEnv::new(NativeEnv::new(4)));
    let bodies = Model::Plummer.generate(96, 1998);
    let mut cfg = SimConfig::new(Algorithm::Orig);
    cfg.k = 4;
    cfg.warmup_steps = 1;
    cfg.measured_steps = 1;
    let stats = run_simulation(&env, &cfg, &bodies);
    stats.assert_valid();
    env.inner().assert_race_free();
    let spans = env.spans();
    for phase in Phase::ALL {
        assert!(
            spans.iter().any(|s| s.phase == phase),
            "no {} span recorded through the detector",
            phase.name()
        );
    }
    assert!(
        !env.lock_histogram().is_empty(),
        "ORIG lock traffic must survive the CheckedEnv layer"
    );
}

#[test]
fn detector_composes_with_simulated_machine() {
    // CheckedEnv wraps any Env, including the ssmp cost-model machine:
    // certify one algorithm end-to-end on a simulated platform.
    let cost = bh_repro::ssmp::platform::by_name("origin2000", 4).expect("platform");
    let env = CheckedEnv::new(bh_repro::ssmp::Machine::new(cost, 4));
    let bodies = Model::Plummer.generate(64, 1998);
    let mut cfg = SimConfig::new(Algorithm::Orig);
    cfg.k = 4;
    cfg.warmup_steps = 1;
    cfg.measured_steps = 1;
    let stats = run_simulation(&env, &cfg, &bodies);
    stats.assert_valid();
    env.assert_race_free();
}
