//! Static audit of `unsafe` usage across the workspace.
//!
//! The reproduction deliberately confines unsafety to the shared-memory
//! layer (see `crates/core/src/shared.rs` module docs). This test enforces
//! that confinement mechanically:
//!
//! 1. `unsafe` may appear only in whitelisted modules;
//! 2. every `unsafe` site must carry an adjacent `// SAFETY:` comment
//!    stating why it is sound;
//! 3. every workspace crate root must carry `#![deny(unsafe_op_in_unsafe_fn)]`.
//!
//! The scanner is intentionally line-based and conservative: commented-out
//! code does not trip it, but it has no full parser — if it ever
//! misclassifies a line, adjust the code (or the whitelist) rather than the
//! scanner.
//!
//! A second audit enforces the *synchronization* confinement that the
//! verification stack depends on: production code may not reach for
//! `std::sync` / `std::thread` directly — all synchronization and shared
//! memory must flow through the [`Env`] trait, or `SchedEnv`'s schedule
//! exploration and `CheckedEnv`'s race detection silently lose sight of it.
//! Only the modules that *implement* that layer (and the host-side batch
//! scheduler) are whitelisted; `#[cfg(test)]` modules are exempt because
//! unit tests drive the layer from outside it.

use std::path::{Path, PathBuf};

/// Modules allowed to contain `unsafe` (path suffixes, `/`-separated).
/// A trailing `/` whitelists a directory.
const WHITELIST: &[&str] = &[
    "crates/core/src/shared.rs",
    "crates/core/src/tree/",
    "crates/core/src/env.rs",
    "crates/core/src/harness.rs",
    "crates/ssmp/src/machine.rs",
];

/// Modules allowed to use `std::sync` / `std::thread` directly: the layer
/// that implements the `Env` abstraction (plus the host-side experiment
/// scheduler, which manages OS processes rather than simulated procs).
/// Everything else must synchronize through `Env`, where the schedule
/// explorer and race checker can see it.
const SYNC_WHITELIST: &[&str] = &[
    "crates/core/src/sync.rs",
    "crates/core/src/env.rs",
    "crates/core/src/harness.rs",
    "crates/core/src/shared.rs",
    "crates/core/src/sched.rs",
    "crates/ssmp/src/machine.rs",
    // The serve layer's thread-owning edges: executor workers + condvars
    // (server.rs), per-connection socket reader threads (transport.rs),
    // and the load generator's per-tenant driver threads (client.rs).
    // These are host-side service plumbing around the Env-confined
    // simulation core; job *logic* (queue.rs, cache.rs, exec.rs, job.rs,
    // protocol.rs) stays off this list deliberately.
    "crates/serve/src/server.rs",
    "crates/serve/src/transport.rs",
    "crates/serve/src/client.rs",
];

/// Crate roots that must opt in to `deny(unsafe_op_in_unsafe_fn)`.
const CRATE_ROOTS: &[&str] = &[
    "src/lib.rs",
    "crates/core/src/lib.rs",
    "crates/ssmp/src/lib.rs",
    "crates/serve/src/lib.rs",
    "crates/experiments/src/lib.rs",
];

/// How many preceding code lines may separate a `// SAFETY:` comment from
/// its `unsafe` site.
const SAFETY_WINDOW: usize = 3;

#[derive(Debug, PartialEq)]
enum Violation {
    /// `unsafe` outside the whitelist.
    OutsideWhitelist { line: usize },
    /// Whitelisted `unsafe` without an adjacent `// SAFETY:` comment.
    MissingSafetyComment { line: usize },
}

/// True if the (comment-stripped) line contains `unsafe` as a word.
fn mentions_unsafe(code: &str) -> bool {
    code.split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .any(|tok| tok == "unsafe")
}

/// Strip line comments and (approximately) string literals, so `unsafe`
/// inside docs, comments or message strings does not count.
fn code_portion(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

/// Scan one file's source text for unsafe-audit violations.
fn scan_source(src: &str, whitelisted: bool) -> Vec<Violation> {
    let lines: Vec<&str> = src.lines().collect();
    let mut violations = Vec::new();
    for (i, raw) in lines.iter().enumerate() {
        let code = code_portion(raw);
        if !mentions_unsafe(&code) {
            continue;
        }
        // The deny attribute itself and `unsafe_op_in_unsafe_fn` in cfgs
        // are not unsafe code.
        if code.contains("unsafe_op_in_unsafe_fn") {
            continue;
        }
        if !whitelisted {
            violations.push(Violation::OutsideWhitelist { line: i + 1 });
            continue;
        }
        // Look for `SAFETY:` on this line or within the preceding window
        // (comment lines in between don't consume the window).
        let mut found = raw.contains("SAFETY:");
        let mut code_lines_seen = 0;
        for j in (0..i).rev() {
            if lines[j].contains("SAFETY:") {
                found = true;
                break;
            }
            if !code_portion(lines[j]).trim().is_empty() {
                code_lines_seen += 1;
                if code_lines_seen >= SAFETY_WINDOW {
                    break;
                }
            }
        }
        if !found {
            violations.push(Violation::MissingSafetyComment { line: i + 1 });
        }
    }
    violations
}

fn is_whitelisted(rel: &str) -> bool {
    WHITELIST.iter().any(|w| {
        if w.ends_with('/') {
            rel.starts_with(w)
        } else {
            rel == *w
        }
    })
}

/// Scan one file for direct `std::sync` / `std::thread` references in
/// production code. Scanning stops at the first `#[cfg(test)]` attribute:
/// by repo convention the unit-test module is the last item in a file, and
/// test code legitimately uses host threads to exercise the `Env` layer
/// from outside.
fn scan_sync(src: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let code = code_portion(raw);
        if code.contains("#[cfg(test)]") {
            break;
        }
        if code.contains("std::sync") || code.contains("std::thread") {
            hits.push(i + 1);
        }
    }
    hits
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_unsafe_is_whitelisted_and_documented() {
    let root = repo_root();
    let mut files = Vec::new();
    // Everything the workspace builds: library sources, the examples and
    // these integration tests themselves.
    for sub in ["crates", "src", "examples", "tests"] {
        collect_rs_files(&root.join(sub), &mut files);
    }
    assert!(
        files.len() >= 20,
        "audit walked too few files: {}",
        files.len()
    );

    let mut failures = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap()
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {rel}: {e}"));
        for v in scan_source(&src, is_whitelisted(&rel)) {
            match v {
                Violation::OutsideWhitelist { line } => failures.push(format!(
                    "{rel}:{line}: `unsafe` outside the whitelisted modules"
                )),
                Violation::MissingSafetyComment { line } => failures.push(format!(
                    "{rel}:{line}: `unsafe` without an adjacent `// SAFETY:` comment"
                )),
            }
        }
    }
    assert!(
        failures.is_empty(),
        "unsafe audit failed:\n  {}\nEither document the site with a `// SAFETY:` comment, move it \
         into the shared-memory layer, or (deliberately) extend the whitelist in tests/unsafe_audit.rs.",
        failures.join("\n  ")
    );
}

/// All synchronization in production code flows through `Env`. A direct
/// `std::sync` / `std::thread` use outside the layer that implements the
/// abstraction is invisible to `SchedEnv` (schedule exploration cannot
/// interleave at it) and to `CheckedEnv` (it creates happens-before edges
/// the detector never sees) — so it is a correctness hole in the entire
/// verification stack, not a style nit.
#[test]
fn production_code_synchronizes_only_through_env() {
    let root = repo_root();
    let mut files = Vec::new();
    for sub in ["crates", "src"] {
        collect_rs_files(&root.join(sub), &mut files);
    }
    let mut failures = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap()
            .to_string_lossy()
            .replace('\\', "/");
        if SYNC_WHITELIST.contains(&rel.as_str()) {
            continue;
        }
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {rel}: {e}"));
        for line in scan_sync(&src) {
            failures.push(format!(
                "{rel}:{line}: direct std::sync / std::thread use outside the Env layer"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "sync confinement audit failed:\n  {}\nRoute the synchronization through the Env trait so \
         the schedule explorer and race checker can observe it, or (deliberately) extend \
         SYNC_WHITELIST in tests/unsafe_audit.rs.",
        failures.join("\n  ")
    );
}

#[test]
fn crate_roots_deny_unsafe_op_in_unsafe_fn() {
    let root = repo_root();
    for rel in CRATE_ROOTS {
        let src =
            std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"));
        assert!(
            src.contains("#![deny(unsafe_op_in_unsafe_fn)]"),
            "{rel}: missing #![deny(unsafe_op_in_unsafe_fn)]"
        );
    }
}

// ---- scanner self-tests on synthetic sources ------------------------------

#[test]
fn scanner_accepts_documented_unsafe_in_whitelisted_module() {
    let src = "fn f(x: &UnsafeCell<u32>) -> u32 {\n    // SAFETY: caller holds the lock.\n    unsafe { *x.get() }\n}\n";
    assert_eq!(scan_source(src, true), vec![]);
}

#[test]
fn scanner_rejects_undocumented_unsafe() {
    let src = "fn f(x: &UnsafeCell<u32>) -> u32 {\n    unsafe { *x.get() }\n}\n";
    assert_eq!(
        scan_source(src, true),
        vec![Violation::MissingSafetyComment { line: 2 }]
    );
}

#[test]
fn scanner_rejects_unsafe_outside_whitelist_even_with_comment() {
    let src = "// SAFETY: trust me.\nunsafe impl Sync for Foo {}\n";
    assert_eq!(
        scan_source(src, false),
        vec![Violation::OutsideWhitelist { line: 2 }]
    );
}

#[test]
fn scanner_safety_window_is_bounded() {
    // The SAFETY comment is 4 code lines above the site: out of range.
    let src =
        "// SAFETY: stale.\nlet a = 1;\nlet b = 2;\nlet c = 3;\nlet d = 4;\nunsafe { go() }\n";
    assert_eq!(
        scan_source(src, true),
        vec![Violation::MissingSafetyComment { line: 6 }]
    );
}

#[test]
fn scanner_ignores_comments_and_strings() {
    let src = "// unsafe in a comment\nlet s = \"unsafe in a string\";\n/// docs about unsafe\nlet unsafety = 1; // not the keyword\n";
    assert_eq!(scan_source(src, false), vec![]);
}

#[test]
fn sync_scanner_flags_production_uses_only() {
    let src = "use std::sync::Mutex;\nfn f() { std::thread::spawn(|| {}); }\n\
               // std::sync in a comment is fine\n\
               let s = \"std::thread in a string\";\n\
               #[cfg(test)]\nmod tests {\n    use std::sync::Arc; // exempt\n}\n";
    assert_eq!(scan_sync(src), vec![1, 2]);
}

#[test]
fn scanner_flags_unsafe_impls_and_fns() {
    let src = "unsafe impl Send for A {}\nunsafe fn raw() {}\n";
    let vs = scan_source(src, true);
    assert_eq!(
        vs,
        vec![
            Violation::MissingSafetyComment { line: 1 },
            Violation::MissingSafetyComment { line: 2 }
        ]
    );
}
