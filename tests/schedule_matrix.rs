//! Schedule-space certification for all six tree-building algorithms.
//!
//! Each cell runs the full simulation (tree build → partition → force →
//! update, on a tiny body set) under [`bh_core::sched::VerifyEnv`] — the
//! race detector stacked on the controlled scheduler — across many
//! schedules, and asserts the exploration certifies clean: no deadlock, no
//! barrier divergence, no data race, no lock-order cycle, no validation
//! failure. The per-algorithm seeded tests together with the round-robin
//! matrix are the pre-merge gate (`check.sh verify`); the bounded-exhaustive
//! pass is `#[ignore]`d for nightly / manual runs.
//!
//! Workload note: scheduling serializes execution and every sync op is a
//! context switch, so the workload is deliberately tiny (n = 24, k = 2, one
//! warmup + one measured step). The schedule space, not the body count, is
//! what these tests cover.

use bh_core::prelude::*;
use bh_core::sched::explore_algorithm;

/// 25 seeded schedules per (algorithm, procs) cell; with six algorithms
/// at 2 and 3 processors this certifies 6 × 2 × 25 = 300 seeded schedules,
/// clearing the 200-schedule floor with the round-robin runs on top.
const SEEDS_PER_CELL: usize = 25;

fn certify(alg: Algorithm, procs: usize, plan: &ExplorePlan) {
    let spec = MatrixSpec::fast(SEEDS_PER_CELL);
    let agg = explore_algorithm(alg, procs, plan, &spec);
    let mut report = String::new();
    for ce in &agg.counterexamples {
        report.push_str(&format!("{ce}"));
    }
    if !agg.lock_cycles.is_empty() {
        report.push_str(&format!("lock-order cycles: {:?}\n", agg.lock_cycles));
    }
    assert!(
        agg.certified(),
        "{alg:?} on {procs} procs under {}: {} defective schedule(s) of {}\n{report}",
        plan.name(),
        agg.defects,
        agg.schedules,
    );
}

fn certify_seeded(alg: Algorithm) {
    for procs in [2, 3] {
        certify(
            alg,
            procs,
            &ExplorePlan::Seeded {
                base: 1000 * procs as u64,
                count: SEEDS_PER_CELL,
            },
        );
    }
}

#[test]
fn orig_certifies_across_seeded_schedules() {
    certify_seeded(Algorithm::Orig);
}

#[test]
fn local_certifies_across_seeded_schedules() {
    certify_seeded(Algorithm::Local);
}

#[test]
fn update_certifies_across_seeded_schedules() {
    certify_seeded(Algorithm::Update);
}

#[test]
fn partree_certifies_across_seeded_schedules() {
    certify_seeded(Algorithm::Partree);
}

#[test]
fn space_certifies_across_seeded_schedules() {
    certify_seeded(Algorithm::Space);
}

#[test]
fn morton_certifies_across_seeded_schedules() {
    certify_seeded(Algorithm::Morton);
}

/// Bounded-exhaustive exploration of a minimal sort-and-emit kernel: the
/// actual MORTON phases (cooperative radix sort → plan → count → fill →
/// spine) on a tiny body set at 2 processors, validated structurally after
/// every schedule. This certifies the barrier-separated ownership protocol
/// itself — not just the schedules a seed happens to draw — within a
/// bounded budget, and is cheap enough to run pre-merge.
#[test]
fn morton_sort_and_emit_kernel_bounded_exhaustive() {
    use bh_core::algorithms::morton;
    use bh_core::harness::spmd;
    use bh_core::math::{Aabb, Cube};
    use bh_core::sched::{explore, SchedConfig};
    use bh_core::tree::flat::FlatTree;
    use bh_core::tree::validate::validate_flat_morton;
    use bh_core::world::World;

    let agg = explore(
        2,
        &ExplorePlan::Exhaustive {
            preemption_bound: 1,
            max_schedules: 300,
        },
        &SchedConfig::default(),
        |env| {
            let bodies = Model::Plummer.generate(6, 5);
            let world = World::new(env, &bodies);
            let scratch = morton::MortonScratch::new(env, bodies.len());
            let flat = FlatTree::new(env, bodies.len(), 1, Algorithm::Morton.layout());
            let cube = Cube::enclosing(&Aabb::from_points(bodies.iter().map(|b| b.pos)));
            spmd(env, |proc, ctx| {
                morton::sort_keys(env, ctx, &world, &scratch, &cube, proc);
                let plan = morton::plan(env, ctx, &scratch, world.n, 1, cube);
                let owned = morton::publish_counts(env, ctx, &scratch, &plan, 1, proc);
                env.barrier(ctx);
                morton::fill(env, ctx, &flat, &world, &scratch, &plan, &owned, 1);
                env.barrier(ctx);
                if proc == 0 {
                    morton::fill_spine(env, ctx, &flat, &scratch, &plan);
                }
                env.barrier(ctx);
            });
            let positions: Vec<_> = bodies.iter().map(|b| b.pos).collect();
            let masses: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
            validate_flat_morton(&flat, &positions, &masses, 1).err()
        },
    );
    let mut report = String::new();
    for ce in &agg.counterexamples {
        report.push_str(&format!("{ce}"));
    }
    assert!(
        agg.certified(),
        "morton kernel: {} defective of {} schedules\n{report}",
        agg.defects,
        agg.schedules
    );
    assert!(agg.schedules > 1, "explorer found no schedule branching");
}

/// The batched force kernel's knob edges under the controlled scheduler:
/// the per-body ablation (`group_size = 0`), per-body lists (`1`), and an
/// odd size (`3`) whose windows straddle the zone cut between the two
/// processors, so both owners traverse the same shared window while
/// emitting into disjoint scratch rows. The default matrix above already
/// explores `group_size = 16`; these cells pin the remaining kernel
/// variants on one lock-based and one lock-free builder.
#[test]
fn grouped_force_kernel_certifies_across_group_sizes() {
    for gs in [0usize, 1, 3] {
        let mut spec = MatrixSpec::fast(8);
        spec.group_size = gs;
        for alg in [Algorithm::Orig, Algorithm::Morton] {
            let agg = explore_algorithm(
                alg,
                2,
                &ExplorePlan::Seeded {
                    base: 500,
                    count: 8,
                },
                &spec,
            );
            assert!(
                agg.certified(),
                "{alg:?} group_size={gs}: {} defective schedule(s) of {}",
                agg.defects,
                agg.schedules,
            );
        }
    }
}

/// The single deterministic round-robin schedule for every algorithm at
/// both processor counts — the cheapest full-matrix sweep, and the one a
/// failure reproduces exactly.
#[test]
fn round_robin_matrix_is_clean() {
    for alg in Algorithm::ALL {
        for procs in [2, 3] {
            certify(alg, procs, &ExplorePlan::RoundRobin);
        }
    }
}

/// Known lock-order discipline: node cell locks may nest over the freelist
/// lock, never the reverse. Only UPDATE's leaf-reuse path nests at all (the
/// other algorithms allocate via fetch-add and take cell locks one at a
/// time), and the free lists are only populated from the second step on —
/// so this runs UPDATE for two measured steps and requires both that
/// nesting was actually observed and that the union graph is acyclic.
#[test]
fn update_freelist_nesting_stays_acyclic() {
    let mut spec = MatrixSpec::fast(8);
    spec.measured_steps = 2;
    let agg = explore_algorithm(
        Algorithm::Update,
        2,
        &ExplorePlan::Seeded { base: 77, count: 8 },
        &spec,
    );
    assert!(
        agg.lock_cycles.is_empty(),
        "UPDATE lock-order cycles: {:?}",
        agg.lock_cycles
    );
    assert!(
        !agg.lock_edges.is_empty(),
        "UPDATE took no nested locks — the discipline check tested nothing"
    );
}

/// Bounded-exhaustive exploration (preemption bound 1, sleep-set pruned) on
/// the smallest interesting configuration. Far too slow for pre-merge;
/// run with `cargo test --test schedule_matrix -- --ignored`.
#[test]
#[ignore = "bounded-exhaustive: minutes of runtime; nightly / manual only"]
fn space_bounded_exhaustive_at_two_procs() {
    let mut spec = MatrixSpec::fast(0);
    spec.n = 8;
    spec.k = 1;
    spec.warmup_steps = 0;
    spec.measured_steps = 1;
    let agg = explore_algorithm(
        Algorithm::Space,
        2,
        &ExplorePlan::Exhaustive {
            preemption_bound: 1,
            max_schedules: 400,
        },
        &spec,
    );
    let mut report = String::new();
    for ce in &agg.counterexamples {
        report.push_str(&format!("{ce}"));
    }
    assert!(
        agg.defects == 0 && agg.lock_cycles.is_empty(),
        "exhaustive SPACE: {} defective of {} schedules\n{report}",
        agg.defects,
        agg.schedules
    );
}
