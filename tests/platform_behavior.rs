//! Integration tests of the paper's qualitative claims on the simulated
//! platforms — the behaviors every figure rests on.
//!
//! Each claim is checked at a reduced problem size by default so the tier-1
//! suite stays fast; the paper-scale originals are kept as `_full` variants
//! marked `#[ignore]` and are run by `check.sh` (`cargo test -- --ignored`).

use bh_repro::bh_core::prelude::*;
use bh_repro::ssmp::{platform, Machine};

fn run(
    cost: &bh_repro::ssmp::CostModel,
    alg: Algorithm,
    n: usize,
    procs: usize,
) -> bh_repro::bh_core::app::RunStats {
    let machine = Machine::new(cost.clone(), procs);
    let mut cfg = SimConfig::new(alg);
    cfg.warmup_steps = 1;
    cfg.measured_steps = 1;
    let stats = run_simulation(&machine, &cfg, &Model::Plummer.generate(n, 1998));
    stats.assert_valid();
    stats
}

fn space_lock_free(n: usize, procs: usize) {
    for cost in platform::all_platforms(procs) {
        let stats = run(&cost, Algorithm::Space, n, procs);
        let locks: u64 = stats.tree_locks_per_proc().iter().sum();
        assert_eq!(locks, 0, "SPACE locked on {}", cost.name);
    }
}

#[test]
fn space_is_lock_free_on_every_platform() {
    space_lock_free(512, 4);
}

#[test]
#[ignore = "paper-scale; run with --ignored"]
fn space_is_lock_free_on_every_platform_full() {
    space_lock_free(2048, 8);
}

fn lock_count_ordering(n: usize, procs: usize) {
    // ORIG/LOCAL >= UPDATE-level >> PARTREE >> SPACE(=0).
    let cost = platform::origin2000(procs);
    let locks = |alg| -> u64 { run(&cost, alg, n, procs).tree_locks_per_proc().iter().sum() };
    let orig = locks(Algorithm::Orig);
    let local = locks(Algorithm::Local);
    let partree = locks(Algorithm::Partree);
    let space = locks(Algorithm::Space);
    assert!(orig >= n as u64, "ORIG locks {orig} below one per body");
    assert!(local >= n as u64, "LOCAL locks {local} below one per body");
    assert!(
        partree * 3 < local,
        "PARTREE {partree} not well below LOCAL {local}"
    );
    assert_eq!(space, 0);
}

#[test]
fn lock_count_ordering_matches_figure_15() {
    lock_count_ordering(1024, 4);
}

#[test]
#[ignore = "paper-scale; run with --ignored"]
fn lock_count_ordering_matches_figure_15_full() {
    lock_count_ordering(4096, 8);
}

fn svm_tree_bound(n: usize, procs: usize) {
    // The paper's central result: on page-based SVM the tree build devours
    // the step for the lock-per-body algorithms while SPACE keeps it small.
    let cost = platform::typhoon0_hlrc(procs);
    let local = run(&cost, Algorithm::Local, n, procs);
    let space = run(&cost, Algorithm::Space, n, procs);
    assert!(
        local.tree_fraction() > 0.5,
        "LOCAL tree share {:.2} unexpectedly small on HLRC",
        local.tree_fraction()
    );
    // The bound includes the flat-snapshot build, which is charged to the
    // tree phase and grows its share a few points at paper scale.
    assert!(
        space.tree_fraction() < 0.40,
        "SPACE tree share {:.2} unexpectedly large on HLRC",
        space.tree_fraction()
    );
    assert!(
        space.total_time() * 2 < local.total_time(),
        "SPACE ({}) not clearly faster than LOCAL ({}) on HLRC",
        space.total_time(),
        local.total_time()
    );
}

#[test]
fn svm_makes_lock_heavy_algorithms_tree_bound() {
    svm_tree_bound(4096, 8);
}

#[test]
#[ignore = "paper-scale; run with --ignored"]
fn svm_makes_lock_heavy_algorithms_tree_bound_full() {
    svm_tree_bound(8192, 16);
}

fn hardware_coherence_close(n: usize, procs: usize, spread: f64) {
    // On the Challenge every algorithm speeds up well (paper Figure 6):
    // total times within a modest factor of each other.
    let cost = platform::challenge(procs);
    let times: Vec<u64> = Algorithm::ALL
        .iter()
        .map(|&a| run(&cost, a, n, procs).total_time())
        .collect();
    let min = *times.iter().min().unwrap() as f64;
    let max = *times.iter().max().unwrap() as f64;
    assert!(
        max / min < spread,
        "spread too large on Challenge: {times:?}"
    );
}

#[test]
fn hardware_coherence_keeps_all_algorithms_close() {
    hardware_coherence_close(2048, 4, 1.3);
}

#[test]
#[ignore = "paper-scale; run with --ignored"]
fn hardware_coherence_keeps_all_algorithms_close_full() {
    hardware_coherence_close(8192, 8, 1.3);
}

fn tree_tiny_sequentially(n: usize) {
    // The premise of the paper: a few percent of a sequential step is tree
    // building (including the flatten snapshot).
    for cost in platform::all_platforms(1) {
        let machine = Machine::new(cost.clone(), 1);
        let mut cfg = SimConfig::new(Algorithm::Partree);
        cfg.warmup_steps = 1;
        cfg.measured_steps = 1;
        let stats = run_simulation(&machine, &cfg, &Model::Plummer.generate(n, 3));
        stats.assert_valid();
        assert!(
            stats.tree_fraction() < 0.08,
            "{}: sequential tree share {:.3}",
            cost.name,
            stats.tree_fraction()
        );
    }
}

#[test]
fn tree_build_is_tiny_sequentially_on_every_platform() {
    tree_tiny_sequentially(2048);
}

#[test]
#[ignore = "paper-scale; run with --ignored"]
fn tree_build_is_tiny_sequentially_on_every_platform_full() {
    tree_tiny_sequentially(8192);
}

fn morton_sort_build_beats_local(n: usize, procs: usize) {
    // The point of the sixth algorithm: building the flat tree directly from
    // the sorted key array skips both the lock traffic of the insertion
    // builders and the separate flatten pass, and comes out ahead of LOCAL
    // on the tree phase end to end.
    let cost = platform::origin2000(procs);
    let morton = run(&cost, Algorithm::Morton, n, procs);
    let local = run(&cost, Algorithm::Local, n, procs);
    let locks: u64 = morton.tree_locks_per_proc().iter().sum();
    assert_eq!(locks, 0, "MORTON took tree locks");
    assert_eq!(morton.flatten_cycles(), 0, "MORTON charged a flatten pass");
    assert!(morton.sort_cycles() > 0, "MORTON charged no sort time");
    assert!(
        morton.tree_time() < local.tree_time(),
        "MORTON tree phase ({}) not below LOCAL ({}) on the Origin",
        morton.tree_time(),
        local.tree_time()
    );
}

#[test]
fn morton_builds_without_locks_or_flatten_and_beats_local() {
    morton_sort_build_beats_local(2048, 8);
}

#[test]
#[ignore = "paper-scale; run with --ignored"]
fn morton_builds_without_locks_or_flatten_and_beats_local_full() {
    morton_sort_build_beats_local(8192, 16);
}

#[test]
fn page_faults_only_on_svm_platforms() {
    let hw = run(&platform::origin2000(4), Algorithm::Local, 2048, 4);
    let faults: u64 = hw
        .procs_records
        .iter()
        .map(|r| r.final_stats.page_faults)
        .sum();
    assert_eq!(faults, 0, "page faults on a hardware-coherent platform");

    let svm = run(&platform::typhoon0_hlrc(4), Algorithm::Local, 2048, 4);
    let faults: u64 = svm
        .procs_records
        .iter()
        .map(|r| r.final_stats.page_faults)
        .sum();
    assert!(faults > 0, "no page faults on an SVM platform");
}

#[test]
fn remote_misses_only_on_distributed_eager_platforms() {
    let stats = run(&platform::origin2000(4), Algorithm::Local, 2048, 4);
    let remote: u64 = stats
        .procs_records
        .iter()
        .map(|r| r.final_stats.remote_misses)
        .sum();
    assert!(remote > 0, "no remote misses on the Origin");
}

fn simulated_seconds_plausible(n1: usize, n2: usize) {
    // Table 1 sanity: sequential step time in seconds grows with n and the
    // slower machines take longer per cycle.
    let origin = platform::origin2000(1);
    let paragon = platform::paragon_hlrc(1);
    let t = |cost: &bh_repro::ssmp::CostModel, n: usize| {
        let machine = Machine::new(cost.clone(), 1);
        let mut cfg = SimConfig::new(Algorithm::Partree);
        cfg.warmup_steps = 1;
        cfg.measured_steps = 2;
        let stats = run_simulation(&machine, &cfg, &Model::Plummer.generate(n, 8));
        cost.cycles_to_seconds(stats.total_time())
    };
    let o1 = t(&origin, n1);
    let o2 = t(&origin, n2);
    assert!(
        o2 > 3.0 * o1,
        "superlinear-in-n growth expected: {o1} vs {o2}"
    );
    let p1 = t(&paragon, n1);
    assert!(
        p1 > 3.0 * o1,
        "Paragon ({p1}s) should be much slower than Origin ({o1}s)"
    );
}

#[test]
fn simulated_seconds_are_plausible() {
    simulated_seconds_plausible(1024, 4096);
}

#[test]
#[ignore = "paper-scale; run with --ignored"]
fn simulated_seconds_are_plausible_full() {
    simulated_seconds_plausible(2048, 8192);
}
