//! Integration tests of the paper's qualitative claims on the simulated
//! platforms — the behaviors every figure rests on.

use bh_repro::bh_core::prelude::*;
use bh_repro::ssmp::{platform, Machine};

fn run(
    cost: &bh_repro::ssmp::CostModel,
    alg: Algorithm,
    n: usize,
    procs: usize,
) -> bh_repro::bh_core::app::RunStats {
    let machine = Machine::new(cost.clone(), procs);
    let mut cfg = SimConfig::new(alg);
    cfg.warmup_steps = 1;
    cfg.measured_steps = 1;
    let stats = run_simulation(&machine, &cfg, &Model::Plummer.generate(n, 1998));
    stats.assert_valid();
    stats
}

#[test]
fn space_is_lock_free_on_every_platform() {
    for cost in platform::all_platforms(8) {
        let stats = run(&cost, Algorithm::Space, 2048, 8);
        let locks: u64 = stats.tree_locks_per_proc().iter().sum();
        assert_eq!(locks, 0, "SPACE locked on {}", cost.name);
    }
}

#[test]
fn lock_count_ordering_matches_figure_15() {
    // ORIG/LOCAL >= UPDATE-level >> PARTREE >> SPACE(=0).
    let cost = platform::origin2000(8);
    let locks = |alg| -> u64 { run(&cost, alg, 4096, 8).tree_locks_per_proc().iter().sum() };
    let orig = locks(Algorithm::Orig);
    let local = locks(Algorithm::Local);
    let partree = locks(Algorithm::Partree);
    let space = locks(Algorithm::Space);
    assert!(orig >= 4096, "ORIG locks {orig} below one per body");
    assert!(local >= 4096, "LOCAL locks {local} below one per body");
    assert!(
        partree * 3 < local,
        "PARTREE {partree} not well below LOCAL {local}"
    );
    assert_eq!(space, 0);
}

#[test]
fn svm_makes_lock_heavy_algorithms_tree_bound() {
    // The paper's central result: on page-based SVM the tree build devours
    // the step for the lock-per-body algorithms while SPACE keeps it small.
    let cost = platform::typhoon0_hlrc(16);
    let local = run(&cost, Algorithm::Local, 8192, 16);
    let space = run(&cost, Algorithm::Space, 8192, 16);
    assert!(
        local.tree_fraction() > 0.5,
        "LOCAL tree share {:.2} unexpectedly small on HLRC",
        local.tree_fraction()
    );
    assert!(
        space.tree_fraction() < 0.35,
        "SPACE tree share {:.2} unexpectedly large on HLRC",
        space.tree_fraction()
    );
    assert!(
        space.total_time() * 2 < local.total_time(),
        "SPACE ({}) not clearly faster than LOCAL ({}) on HLRC",
        space.total_time(),
        local.total_time()
    );
}

#[test]
fn hardware_coherence_keeps_all_algorithms_close() {
    // On the Challenge every algorithm speeds up well (paper Figure 6):
    // total times within ~25% of each other.
    let cost = platform::challenge(8);
    let times: Vec<u64> = Algorithm::ALL
        .iter()
        .map(|&a| run(&cost, a, 8192, 8).total_time())
        .collect();
    let min = *times.iter().min().unwrap() as f64;
    let max = *times.iter().max().unwrap() as f64;
    assert!(max / min < 1.3, "spread too large on Challenge: {times:?}");
}

#[test]
fn tree_build_is_tiny_sequentially_on_every_platform() {
    // The premise of the paper: <3% of a sequential step is tree building.
    for cost in platform::all_platforms(1) {
        let machine = Machine::new(cost.clone(), 1);
        let mut cfg = SimConfig::new(Algorithm::Partree);
        cfg.warmup_steps = 1;
        cfg.measured_steps = 1;
        let stats = run_simulation(&machine, &cfg, &Model::Plummer.generate(8192, 3));
        stats.assert_valid();
        assert!(
            stats.tree_fraction() < 0.08,
            "{}: sequential tree share {:.3}",
            cost.name,
            stats.tree_fraction()
        );
    }
}

#[test]
fn page_faults_only_on_svm_platforms() {
    let hw = run(&platform::origin2000(4), Algorithm::Local, 2048, 4);
    let faults: u64 = hw
        .procs_records
        .iter()
        .map(|r| r.final_stats.page_faults)
        .sum();
    assert_eq!(faults, 0, "page faults on a hardware-coherent platform");

    let svm = run(&platform::typhoon0_hlrc(4), Algorithm::Local, 2048, 4);
    let faults: u64 = svm
        .procs_records
        .iter()
        .map(|r| r.final_stats.page_faults)
        .sum();
    assert!(faults > 0, "no page faults on an SVM platform");
}

#[test]
fn remote_misses_only_on_distributed_eager_platforms() {
    let stats = run(&platform::origin2000(4), Algorithm::Local, 2048, 4);
    let remote: u64 = stats
        .procs_records
        .iter()
        .map(|r| r.final_stats.remote_misses)
        .sum();
    assert!(remote > 0, "no remote misses on the Origin");
}

#[test]
fn simulated_seconds_are_plausible() {
    // Table 1 sanity: sequential step time in seconds grows with n and the
    // slower machines take longer per cycle.
    let n1 = 2048;
    let n2 = 8192;
    let origin = platform::origin2000(1);
    let paragon = platform::paragon_hlrc(1);
    let t = |cost: &bh_repro::ssmp::CostModel, n: usize| {
        let machine = Machine::new(cost.clone(), 1);
        let mut cfg = SimConfig::new(Algorithm::Partree);
        cfg.warmup_steps = 1;
        cfg.measured_steps = 2;
        let stats = run_simulation(&machine, &cfg, &Model::Plummer.generate(n, 8));
        cost.cycles_to_seconds(stats.total_time())
    };
    let o1 = t(&origin, n1);
    let o2 = t(&origin, n2);
    assert!(
        o2 > 3.0 * o1,
        "superlinear-in-n growth expected: {o1} vs {o2}"
    );
    let p1 = t(&paragon, n1);
    assert!(
        p1 > 3.0 * o1,
        "Paragon ({p1}s) should be much slower than Origin ({o1}s)"
    );
}
