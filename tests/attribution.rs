//! Contract tests for attributed telemetry.
//!
//! Two properties make the per-region breakdown trustworthy:
//!
//! 1. **Tiling.** Every counter the simulator attributes is incremented at
//!    the same program point as its aggregate: summing any attributed
//!    counter over all regions and pipeline stages must reproduce the
//!    aggregate [`CtxStats`] field *exactly* — for every algorithm, on both
//!    a hardware-coherent and a software-SVM platform, at one and several
//!    processors.
//! 2. **Zero perturbation.** Attribution never touches the virtual clock,
//!    so a run with attribution enabled must report bitwise-identical
//!    simulated cycle and counter totals to the same run with it disabled.
//!    (Checked at one processor, where simulated runs are fully
//!    deterministic; multi-processor runs feed real thread interleavings
//!    into the contention model, so their timings legitimately jitter.)

use bh_repro::bh_core::prelude::*;
use bh_repro::ssmp::{platform, AttrTable, CostModel, Machine};

const ALGS: [Algorithm; 6] = [
    Algorithm::Orig,
    Algorithm::Local,
    Algorithm::Update,
    Algorithm::Partree,
    Algorithm::Space,
    Algorithm::Morton,
];

fn tiny_cfg(alg: Algorithm) -> SimConfig {
    let mut cfg = SimConfig::new(alg);
    cfg.k = 4;
    cfg.warmup_steps = 1;
    cfg.measured_steps = 1;
    cfg
}

fn run_attributed(cost: &CostModel, alg: Algorithm, procs: usize) -> (RunStats, AttrTable) {
    let bodies = Model::Plummer.generate(192, 1998);
    let machine = Machine::new(cost.clone(), procs).with_attribution();
    let stats = run_simulation(&machine, &tiny_cfg(alg), &bodies);
    stats.assert_valid();
    let mut sum = AttrTable::new();
    for t in machine.attribution().expect("attribution enabled") {
        sum.accumulate(&t);
    }
    (stats, sum)
}

/// Tiling: per-(region x stage) counters sum exactly to the aggregates, for
/// all six algorithms on both platform families, serial and parallel.
#[test]
fn attribution_tiles_aggregates_for_every_algorithm() {
    for cost in [platform::origin2000(4), platform::typhoon0_hlrc(4)] {
        for alg in ALGS {
            for procs in [1, 4] {
                let (stats, sum) = run_attributed(&cost, alg, procs);
                let mut agg = CtxStats::default();
                for r in &stats.procs_records {
                    agg.accumulate(&r.final_stats);
                }
                let total = sum.total();
                let label = format!("{}/{}/{procs}p", cost.name, alg.name());
                assert_eq!(total.local_misses, agg.local_misses, "{label} local");
                assert_eq!(total.remote_misses, agg.remote_misses, "{label} remote");
                assert_eq!(total.page_faults, agg.page_faults, "{label} faults");
                assert_eq!(total.lock_acquires, agg.lock_acquires, "{label} locks");
                assert_eq!(total.lock_wait, agg.lock_wait, "{label} lock wait");
            }
        }
    }
}

/// The breakdown is not a blob: tagged regions absorb the traffic, and the
/// untagged catch-all stays a sliver. SPACE attributes zero lock traffic.
#[test]
fn attribution_resolves_regions() {
    let cost = platform::origin2000(4);

    let (_, orig) = run_attributed(&cost, Algorithm::Orig, 4);
    let tree_cells = orig.region_total(Region::TreeCells);
    assert!(
        tree_cells.lock_acquires > 0,
        "ORIG locks tree cells on every insert"
    );
    let tagged_remote: u64 = Region::ALL
        .iter()
        .filter(|r| **r != Region::Other)
        .map(|r| orig.region_total(*r).remote_misses)
        .sum();
    let other_remote = orig.region_total(Region::Other).remote_misses;
    assert!(
        tagged_remote > other_remote,
        "tagged regions must absorb most remote traffic \
         (tagged {tagged_remote} vs untagged {other_remote})"
    );

    let (_, space) = run_attributed(&cost, Algorithm::Space, 4);
    assert_eq!(space.total().lock_acquires, 0, "SPACE is lock-free");

    let (_, morton) = run_attributed(&cost, Algorithm::Morton, 4);
    assert_eq!(morton.total().lock_acquires, 0, "MORTON is lock-free");
    let sort = morton.region_total(Region::SortScratch);
    assert!(
        sort.local_misses + sort.remote_misses > 0,
        "MORTON's sort workspace traffic must land in its own region"
    );
    // The batched force kernel emits interaction lists into tagged
    // per-processor scratch; that traffic must resolve to its own region
    // (for both builder families — MORTON and the lock-based ORIG).
    for (name, run) in [("ORIG", &orig), ("MORTON", &morton)] {
        let fl = run.region_total(Region::ForceList);
        assert!(
            fl.local_misses + fl.remote_misses > 0,
            "{name}: force-list emission traffic must land in its own region"
        );
    }
}

/// Disabled telemetry is free: with attribution off (the default), the
/// simulated clocks and counters are bitwise identical to an attributed
/// run of the same single-processor configuration.
#[test]
fn disabled_attribution_changes_nothing() {
    let bodies = Model::Plummer.generate(192, 1998);
    for cost in [platform::origin2000(1), platform::typhoon0_hlrc(1)] {
        for alg in ALGS {
            let plain = Machine::new(cost.clone(), 1);
            let with = Machine::new(cost.clone(), 1).with_attribution();
            let a = run_simulation(&plain, &tiny_cfg(alg), &bodies);
            let b = run_simulation(&with, &tiny_cfg(alg), &bodies);
            let label = format!("{}/{}", cost.name, alg.name());
            assert_eq!(a.total_time(), b.total_time(), "{label} total cycles");
            assert_eq!(a.tree_time(), b.tree_time(), "{label} tree cycles");
            for (ra, rb) in a.procs_records.iter().zip(&b.procs_records) {
                assert_eq!(ra.final_stats, rb.final_stats, "{label} final stats");
                assert_eq!(ra.step_stats, rb.step_stats, "{label} step stats");
            }
        }
    }
}
