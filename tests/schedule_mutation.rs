//! Mutation test for the schedule explorer: re-introduce the publication-
//! order bug fixed in PR 1 behind `sched::mutation` and assert the
//! verification stack actually finds it.
//!
//! The bug: `insert_locked`'s subdivision path must defer `body_leaf`
//! forwarding stores until `flush_forwards` runs after the replacement
//! subtree is published under the parent lock. Storing them mid-build
//! (the mutation) leaks pointers to leaves the builder is still writing:
//! UPDATE's move phase follows `body_leaf` → `leaf_parent` and reads the
//! leaf record under the *sub-cell's* lock — which the builder does not
//! hold — so a later grow of that leaf races with the mover's read.
//!
//! In the full simulation the triggering geometry (a cross-processor body
//! inside a leaf that overflows while its owner is being moved) is rare —
//! native-timing runs reproduce it in well under half their trials, and
//! seeded serialized schedules essentially never order the builder far
//! enough ahead of the reader. The kernel in [`bh_core::sched::selftest`]
//! instead drives the *real* mutated production path (`insert_locked` →
//! `insert_private`) with a three-body geometry built so the leak is
//! reachable, and bounded-exhaustive exploration guarantees the detecting
//! schedule (builder publishes, reader follows the leaked pointer) is
//! covered deterministically — no seed luck involved — while the same plan
//! certifies the unmutated kernel clean and complete.
//!
//! This lives in its own integration-test binary because the mutation flag
//! is process-global: sharing a binary with other tests would let the
//! harness's parallel test threads observe the flag mid-flip.

use bh_core::sched::{mutation, selftest};

/// One test covering both polarities so ordering is fixed: the clean
/// baseline must certify, then the mutated kernel must be caught by the
/// same bounded-exhaustive budget.
#[test]
fn explorer_finds_reintroduced_publication_order_bug() {
    assert!(
        !mutation::early_forward_flush(),
        "mutation flag leaked in from another test"
    );

    // Baseline: deferred flushing, the whole bounded space certifies.
    let clean = selftest::explore_publication_kernel();
    assert!(
        clean.certified(),
        "baseline kernel must certify with the mutation off: {:?}",
        clean.counterexamples.first().map(|c| c.detail.clone())
    );
    assert!(
        clean.complete,
        "kernel schedule space must drain within budget ({} schedules)",
        clean.schedules
    );

    // Mutant: early forwarding stores, same exploration budget.
    mutation::set_early_forward_flush(true);
    let mutant = selftest::explore_publication_kernel();
    let injections = mutation::injections(); // read before the reset below
    mutation::set_early_forward_flush(false);

    assert!(
        injections > 0,
        "mutated path never executed — the kernel no longer subdivides"
    );
    assert!(
        mutant.defects > 0,
        "publication-order mutation survived {} schedules undetected",
        mutant.schedules
    );
    assert!(
        mutant.counterexamples.iter().any(|c| c.kind == "data-race"),
        "expected a data-race counterexample, got: {:?}",
        mutant
            .counterexamples
            .iter()
            .map(|c| c.kind.clone())
            .collect::<Vec<_>>()
    );
    // The counterexample carries its schedule trace for reproduction.
    let ce = mutant
        .counterexamples
        .iter()
        .find(|c| c.kind == "data-race")
        .unwrap();
    assert!(
        !ce.trace.is_empty() && !ce.detail.is_empty(),
        "counterexample missing its report: {ce}"
    );
}
